/**
 * @file
 * Thin compatibility layer for the benchmark harness. Since the study
 * registry moved the table/figure logic into `src/report/`
 * (report/study.hpp), each bench binary is a shim: it parses the
 * historical `--scale` / `--tiles` / `--iterations` / `--jobs` flags
 * and runs its registered study via benchMain(), printing the same
 * plain-text tables as before. `capstan-report` renders the identical
 * studies to Markdown/CSV/JSON and checks them against the paper
 * (docs/REPRODUCTION.md).
 */

#pragma once

#include <string>
#include <vector>

#include "apps/common.hpp"
#include "driver/runner.hpp"
#include "driver/sweep.hpp"
#include "report/catalog.hpp"
#include "sim/config.hpp"

namespace capstan::bench {

using apps::AppTiming;
using sim::CapstanConfig;

/** The eleven application columns, in Table 12 order. */
using report::allApps;

/** Table 6 datasets evaluated for @p app (paper order). */
using report::datasetsFor;

/** Geometric mean of positive values (non-positive entries skipped). */
using report::gmean;

/** Seconds for a timing at the configuration's clock. */
using report::seconds;

/**
 * Default generation scale for a dataset in bench runs (relative to
 * the published size; multiplied by the CLI --scale factor). Forwarded
 * from the driver's dispatch table (src/driver/runner.hpp).
 */
using driver::defaultScale;

/** Extra knobs a run can adjust (shared with `capstan-run`). */
using RunOptions = driver::RunKnobs;

/**
 * Run @p app on @p dataset under @p cfg; returns its timing. Datasets
 * are generated once per (name, scale) and cached across calls. This
 * is the driver's dispatch (src/driver/runner.hpp), shared so the
 * bench harness, the study registry, and `capstan-run` measure exactly
 * the same runs.
 */
using driver::runApp;

/**
 * Weak-scale the DRAM system to the simulated chip slice: a run with
 * @p tiles tiles models tiles/200 of the full 200-unit chip, receiving
 * the same fraction of the configured memory bandwidth. Not applied by
 * default; available for scaling experiments.
 */
CapstanConfig weakScaled(CapstanConfig cfg, int tiles);

/** Parse `--scale <f>` (and `--tiles <n>`) from argv. */
RunOptions parseArgs(int argc, char **argv);

/** Parse `--jobs <n>` (sweep worker threads; 0 = all cores). */
int parseJobs(int argc, char **argv);

/** Progress printer ("  [3/77] CSR / ckt11752_dc_1") for stderr. */
driver::SweepProgress benchProgress();

/**
 * The body of every bench shim: run the registered study named
 * @p study under the parsed CLI knobs (searching
 * data/paper_reference.json, then ../data/paper_reference.json, for
 * the "ours / paper" display values) and print its tables as text.
 * Returns the process exit code.
 */
int benchMain(const std::string &study, int argc, char **argv);

} // namespace capstan::bench

