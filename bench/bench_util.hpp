/**
 * @file
 * Shared infrastructure for the benchmark harness: a uniform runner over
 * (application, dataset, configuration) triples, a dataset cache, and a
 * plain-text table printer. One binary per paper table/figure links this
 * library (see DESIGN.md #2 for the experiment index).
 *
 * Every binary accepts an optional `--scale <f>` argument multiplying
 * the default dataset scales (1.0 reproduces Table 6's published sizes;
 * the defaults keep the full harness within laptop wall-times and are
 * recorded in EXPERIMENTS.md).
 */

#ifndef CAPSTAN_BENCH_UTIL_HPP
#define CAPSTAN_BENCH_UTIL_HPP

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "apps/common.hpp"
#include "driver/runner.hpp"
#include "driver/sweep.hpp"
#include "sim/config.hpp"

namespace capstan::bench {

using apps::AppTiming;
using sim::CapstanConfig;

/** The eleven application columns, in Table 12 order. */
const std::vector<std::string> &allApps();

/** Table 6 datasets evaluated for @p app (paper order). */
std::vector<std::string> datasetsFor(const std::string &app);

/**
 * Default generation scale for a dataset in bench runs (relative to the
 * published size; multiplied by the CLI --scale factor). Forwarded from
 * the driver's dispatch table (src/driver/runner.hpp).
 */
using driver::defaultScale;

/** Extra knobs a run can adjust (shared with `capstan-run`). */
using RunOptions = driver::RunKnobs;

/**
 * Weak-scale the DRAM system to the simulated chip slice: a run with
 * @p tiles tiles models tiles/200 of the full 200-unit chip, receiving
 * the same fraction of the configured memory bandwidth. Not applied by
 * default (the bench runs use the full memory system, documented in
 * EXPERIMENTS.md); available for scaling experiments.
 */
CapstanConfig weakScaled(CapstanConfig cfg, int tiles);

/**
 * Run @p app on @p dataset under @p cfg; returns its timing. Datasets
 * are generated once per (name, scale) and cached across calls. This
 * is the driver's dispatch (src/driver/runner.hpp), shared so the
 * bench harness and `capstan-run` measure exactly the same runs.
 */
using driver::runApp;

/** Seconds for a timing at the configuration's clock. */
double seconds(const AppTiming &t);

/** Parse `--scale <f>` (and `--tiles <n>`) from argv. */
RunOptions parseArgs(int argc, char **argv);

/** Parse `--jobs <n>` (sweep worker threads; 0 = all cores). */
int parseJobs(int argc, char **argv);

/**
 * The driver base point a bench sweep varies around: @p app on
 * @p dataset (empty = the app's default) under the harness knobs.
 * Sweep-driven benches (fig5_sensitivity, table9_spmu_sensitivity)
 * build SweepSpecs from this, expand them with driver::expandSweep,
 * and execute the concatenated points with driver::runSweep — the
 * same parallel path as `capstan-run --sweep`.
 */
driver::DriverOptions sweepBase(const std::string &app,
                                const std::string &dataset,
                                const RunOptions &opts);

/** Progress printer ("  [3/77] CSR / ckt11752_dc_1") for stderr. */
driver::SweepProgress benchProgress();

/**
 * Abort the bench (exit 1) if any sweep point failed, so a broken run
 * can never print inf/nan cells and still exit 0 under bench_smoke.
 */
void requireAllOk(const std::vector<driver::SweepPointResult> &results);

/** Geometric mean of positive values (non-positive entries skipped). */
double gmean(const std::vector<double> &values);

/** Minimal fixed-width table printer. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void addRow(const std::vector<std::string> &cells);
    void print() const;

    /** Format helper: fixed-precision double, or "-" when absent. */
    static std::string num(std::optional<double> v, int precision = 2);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace capstan::bench

#endif // CAPSTAN_BENCH_UTIL_HPP
