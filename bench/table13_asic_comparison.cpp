/**
 * @file
 * Table 13: Capstan vs. recently-proposed ASICs, at 1.6 GHz and at a
 * 1 GHz clock parity point. As in the paper:
 *  - EIE and SCNN compare against ideal baseline models; the EIE
 *    comparison uses compute throughput only (ideal network + memory
 *    Capstan run), and SCNN uses the manually-mapped convolution.
 *  - Graphicionado runs without back pointers, with DDR4 Capstan,
 *    including load/store time.
 *  - MatRaptor is taken at its highest demonstrated 10 GOP/s.
 */

#include <cstdio>

#include "baselines/asic_models.hpp"
#include "bench_util.hpp"
#include "workloads/datasets.hpp"

using namespace capstan;
using namespace capstan::bench;
using namespace capstan::baselines;
using namespace capstan::workloads;
namespace sim = capstan::sim;
using sim::CapstanConfig;
using sim::MemTech;

int
main(int argc, char **argv)
{
    RunOptions opts = parseArgs(argc, argv);

    std::printf("Table 13: Capstan speedup over recent accelerators "
                "(ours / paper)\n\n");
    TablePrinter table({"Baseline", "App", "1.6 GHz", "(paper)",
                        "1 GHz", "(paper)"});

    // --- EIE: CSC SpMV compute throughput (weights on-chip for EIE).
    {
        std::string ds = "ckt11752_dc_1";
        double scale = defaultScale(ds) * opts.scale_mult;
        auto m = loadMatrixDataset(ds, scale).matrix;
        std::fprintf(stderr, "  EIE / CSC...\n");
        double cap =
            seconds(runApp("CSC", ds, CapstanConfig::ideal(), opts));
        double eie = eieSeconds(m, 0.30);
        double speedup = eie / cap;
        table.addRow({"EIE", "CSC", TablePrinter::num(speedup, 2),
                      "0.53", TablePrinter::num(speedup / 1.6, 2),
                      "0.40"});
    }

    // --- SCNN: convolution. SCNN's 1024-multiplier array dwarfs the
    // simulated tiles/200 chip slice, so its throughput is weak-scaled
    // by the same fraction (EXPERIMENTS.md, Table 13 notes).
    {
        std::string ds = "ResNet-50 #2";
        double scale = defaultScale(ds) * opts.scale_mult;
        auto layer = loadConvDataset(ds, scale).layer;
        std::fprintf(stderr, "  SCNN / Conv...\n");
        double cap = seconds(runApp(
            "Conv", ds, CapstanConfig::capstan(MemTech::HBM2E), opts));
        double fraction = std::min(1.0, opts.tiles / 200.0);
        double scnn = scnnSeconds(layer) / fraction;
        double speedup = scnn / cap;
        table.addRow({"SCNN", "Conv", TablePrinter::num(speedup, 2),
                      "1.40", TablePrinter::num(speedup / 1.6, 2),
                      "0.87"});
    }

    // --- Graphicionado: PR / BFS / SSSP with DDR4, no back pointers.
    {
        const std::vector<std::tuple<std::string, double, double>>
            rows = {{"PR-Pull", 1.08, 0.97},
                    {"BFS", 2.10, 2.06},
                    {"SSSP", 1.13, 1.03}};
        for (auto &[app, p16, p10] : rows) {
            std::string ds = "flickr";
            double scale = defaultScale(ds) * opts.scale_mult;
            auto g = loadMatrixDataset(ds, scale).matrix;
            RunOptions o = opts;
            o.write_pointers = false;
            std::fprintf(stderr, "  Graphicionado / %s...\n",
                         app.c_str());
            double cap = seconds(runApp(
                app, ds, CapstanConfig::capstan(MemTech::DDR4), o));
            double passes = app == "PR-Pull" ? o.iterations : 6;
            double edges = static_cast<double>(g.nnz()) *
                           (app == "PR-Pull" ? o.iterations : 1.2);
            double graphi = graphicionadoSeconds(edges,
                                                 static_cast<int>(
                                                     passes));
            double speedup = graphi / cap;
            std::string label = app == "PR-Pull" ? "PR" : app;
            table.addRow({"Graphicionado", label,
                          TablePrinter::num(speedup, 2),
                          TablePrinter::num(p16, 2),
                          TablePrinter::num(speedup / 1.6, 2),
                          TablePrinter::num(p10, 2)});
        }
    }

    // --- MatRaptor: SpMSpM at 10 GOP/s.
    {
        std::string ds = "qc324";
        double scale = defaultScale(ds) * opts.scale_mult;
        auto m = loadMatrixDataset(ds, scale).matrix;
        double mults = 0;
        for (Index i = 0; i < m.rows(); ++i) {
            for (Index j : m.rowIndices(i))
                mults += m.rowLength(j);
        }
        std::fprintf(stderr, "  MatRaptor / SpMSpM...\n");
        double cap = seconds(runApp(
            "SpMSpM", ds, CapstanConfig::capstan(MemTech::HBM2E),
            opts));
        double mat = matraptorSeconds(mults);
        double speedup = mat / cap;
        table.addRow({"MatRaptor", "SpMSpM",
                      TablePrinter::num(speedup, 2), "17.96",
                      TablePrinter::num(speedup / 1.6, 2), "12.22"});
    }

    table.print();
    std::printf("\nReference areas (paper): EIE 64 mm^2/28 nm, SCNN "
                "7.9 mm^2/16 nm, Graphicionado 64 MiB eDRAM, MatRaptor "
                "2.26 mm^2/28 nm; Capstan 184.5 mm^2/15 nm.\n");
    return 0;
}
