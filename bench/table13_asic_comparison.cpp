/**
 * @file
 * Table 13 shim: the logic lives in the registered `table13` study
 * (src/report/studies_perf.cpp); this binary runs it under the
 * historical bench CLI (--scale / --tiles / --iterations / --jobs)
 * and prints the same plain-text tables. `capstan-report --study
 * table13` renders the identical study to Markdown/CSV/JSON and
 * checks it against data/paper_reference.json.
 */

#include "bench_util.hpp"

int
main(int argc, char **argv)
{
    return capstan::bench::benchMain("table13", argc, argv);
}
