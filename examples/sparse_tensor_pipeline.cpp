/**
 * @file
 * Sparse tensor algebra on Capstan: Gustavson SpMSpM and bit-tree
 * matrix addition, the two kernels that exercise vectorized
 * sparse-sparse iteration (Sections 2.3-2.4).
 *
 * Computes C = A*B followed by D = C + C^T, verifying both against
 * references, and demonstrates why the bit-tree format matters: the
 * same addition with flat bit-vector rows wastes scanner cycles on
 * zero windows.
 *
 *   $ ./build/examples/sparse_tensor_pipeline
 */

#include <cstdio>

#include "apps/matadd.hpp"
#include "apps/spmspm.hpp"
#include "workloads/synth.hpp"

using namespace capstan;
using namespace capstan::apps;
namespace sim = capstan::sim;

int
main()
{
    sim::CapstanConfig cfg =
        sim::CapstanConfig::capstan(sim::MemTech::HBM2E);

    // --- Stage 1: SpMSpM, C = A * B (row-based Gustavson). Very
    // sparse operands give C rows under 1% density - exactly where
    // Section 2.3 says flat bit-vectors break down.
    auto a = workloads::uniformRandomMatrix(4096, 4096, 0.0015, 3);
    auto b = workloads::uniformRandomMatrix(4096, 4096, 0.0015, 5);
    SpmspmResult mm = runSpmspm(a, b, cfg, 8);
    auto want_c = spmspmReference(a, b);
    bool mm_ok = mm.product.colIdx() == want_c.colIdx();
    std::printf("SpMSpM: (%d x %d, %d nnz) * (%d nnz) -> %d nnz "
                "[%s], %llu cycles\n",
                a.rows(), a.cols(), a.nnz(), b.nnz(),
                mm.product.nnz(), mm_ok ? "verified" : "MISMATCH",
                static_cast<unsigned long long>(mm.timing.cycles));

    // --- Stage 2: M+M, D = C + C^T with bit-tree iteration.
    auto ct = mm.product.transpose();
    MatAddResult add_tree = runMatAdd(mm.product, ct, cfg, 8, true);
    auto want_d = matAddReference(mm.product, ct);
    bool add_ok = add_tree.sum.colIdx() == want_d.colIdx();
    std::printf("M+M   : %d nnz + %d nnz -> %d nnz [%s], %llu "
                "cycles (bit-tree)\n",
                mm.product.nnz(), ct.nnz(), add_tree.sum.nnz(),
                add_ok ? "verified" : "MISMATCH",
                static_cast<unsigned long long>(
                    add_tree.timing.cycles));

    // --- The format ablation on an extremely sparse operand (a
    // circuit matrix: ~7 non-zeros per 30,000-column row). Flat
    // bit-vector rows make the scanner walk >100 zero windows per row;
    // two-level bit-trees skip the empty leaves (Section 2.3).
    auto e = workloads::circuitMatrix(30000, 200000, 9);
    auto et = e.transpose();
    MatAddResult abl_tree = runMatAdd(e, et, cfg, 8, true);
    MatAddResult abl_flat = runMatAdd(e, et, cfg, 8, false);
    std::printf("\nFormat ablation on a %.3f%%-dense circuit "
                "matrix:\n",
                100.0 * e.nnz() / e.rows() / e.cols());
    std::printf("  bit-tree rows   : %llu cycles\n",
                static_cast<unsigned long long>(
                    abl_tree.timing.cycles));
    std::printf("  flat bit-vectors: %llu cycles (%.1fx slower; "
                "%.0f cycles on zero windows)\n",
                static_cast<unsigned long long>(
                    abl_flat.timing.cycles),
                static_cast<double>(abl_flat.timing.cycles) /
                    abl_tree.timing.cycles,
                abl_flat.timing.totals.scan_empty_cycles);

    return mm_ok && add_ok ? 0 : 1;
}
