/**
 * @file
 * Graph analytics on Capstan: BFS, SSSP, and PageRank over a synthetic
 * road network and a power-law web graph — the workloads the paper's
 * introduction motivates. Shows how the two graph structures stress the
 * architecture differently: road networks have deep traversals with
 * tiny frontiers (network-latency-bound), power-law graphs have hubs
 * that hammer the SpMU banks.
 *
 *   $ ./build/examples/graph_analytics
 */

#include <cstdio>
#include <limits>

#include "apps/graph.hpp"
#include "apps/pagerank.hpp"
#include "workloads/synth.hpp"

using namespace capstan;
using namespace capstan::apps;
using namespace capstan::workloads;
namespace sim = capstan::sim;

namespace {

void
analyzeGraph(const char *name, const sparse::CsrMatrix &g)
{
    sim::CapstanConfig cfg =
        sim::CapstanConfig::capstan(sim::MemTech::HBM2E);
    std::printf("=== %s: %d vertices, %d edges ===\n", name, g.rows(),
                g.nnz());

    // Breadth-first search from vertex 0.
    BfsResult bfs = runBfs(g, 0, cfg, 8);
    Index reached = 0;
    Index depth = 0;
    for (Index v = 0; v < static_cast<Index>(bfs.level.size()); ++v) {
        if (bfs.level[v] >= 0) {
            ++reached;
            depth = std::max(depth, bfs.level[v]);
        }
    }
    std::printf("  BFS   : reached %d vertices, depth %d, "
                "%llu cycles\n",
                reached, depth,
                static_cast<unsigned long long>(bfs.timing.cycles));

    // Single-source shortest paths with the min-report-changed RMW.
    SsspResult sssp = runSssp(g, 0, cfg, 8);
    double max_dist = 0;
    for (Value d : sssp.dist) {
        if (d < std::numeric_limits<Value>::infinity())
            max_dist = std::max<double>(max_dist, d);
    }
    std::printf("  SSSP  : farthest reachable vertex at distance "
                "%.2f, %llu cycles\n",
                max_dist,
                static_cast<unsigned long long>(sssp.timing.cycles));

    // PageRank both ways; the paper notes the pull/edge choice matters
    // (Fig. 7): pull loses lanes on low-degree vertices, edge streaming
    // takes SRAM conflicts on hubs.
    PageRankResult pull = runPageRankPull(g, 5, cfg, 8);
    PageRankResult edge = runPageRankEdge(g, 5, cfg, 8);
    Index top = 0;
    for (Index v = 0; v < pull.ranks.size(); ++v) {
        if (pull.ranks[v] > pull.ranks[top])
            top = v;
    }
    std::printf("  PR    : top vertex %d (rank %.2e); pull %llu vs "
                "edge %llu cycles -> use %s here\n",
                top, pull.ranks[top],
                static_cast<unsigned long long>(pull.timing.cycles),
                static_cast<unsigned long long>(edge.timing.cycles),
                pull.timing.cycles < edge.timing.cycles ? "pull"
                                                        : "edge");
    std::printf("\n");
}

} // namespace

int
main()
{
    analyzeGraph("Road network (usroads-like)", roadGraph(20000, 7));
    analyzeGraph("Web graph (power-law R-MAT)",
                 rmatGraph(16384, 120000, 11));
    return 0;
}
