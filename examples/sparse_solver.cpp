/**
 * @file
 * A fused sparse linear solver on Capstan: BiCGStab over a
 * finite-element-style system (Section 4.4's kernel-fusion showcase).
 *
 * Krylov solvers chain sparse matrix-vector products with dense dot
 * products and vector updates. On kernel-driven machines every step is
 * a separate launch with DRAM round-trips for the intermediates; on
 * Capstan the whole iteration fuses into streaming pipelines, so only
 * the matrix ever leaves DRAM. This example solves a system, tracks
 * the residual, and reports how little DRAM traffic the fused solver
 * needs relative to its unfused footprint.
 *
 *   $ ./build/examples/sparse_solver
 */

#include <cmath>
#include <cstdio>

#include "apps/bicgstab.hpp"
#include "workloads/synth.hpp"

using namespace capstan;
using namespace capstan::apps;
namespace sim = capstan::sim;

int
main()
{
    // A diagonally dominant Trefethen-style stiffness matrix.
    auto matrix = workloads::trefethenMatrix(4096);
    sparse::DenseVector b(matrix.rows());
    for (Index i = 0; i < b.size(); ++i)
        b[i] = std::sin(0.37 * i) + 1.5f;

    std::printf("System: %d unknowns, %d non-zeros\n", matrix.rows(),
                matrix.nnz());

    sim::CapstanConfig cfg =
        sim::CapstanConfig::capstan(sim::MemTech::HBM2E);

    double b_norm = 0;
    for (Index i = 0; i < b.size(); ++i)
        b_norm += static_cast<double>(b[i]) * b[i];
    b_norm = std::sqrt(b_norm);

    std::printf("\n%-10s  %-14s  %-12s  %s\n", "iterations",
                "rel. residual", "cycles", "DRAM bytes");
    for (int iters : {1, 2, 4, 8}) {
        BicgstabResult res = runBicgstab(matrix, b, iters, cfg, 8);
        std::printf("%-10d  %-14.3e  %-12llu  %llu\n", iters,
                    res.residual_norm / b_norm,
                    static_cast<unsigned long long>(res.timing.cycles),
                    static_cast<unsigned long long>(
                        res.timing.dram.bytes));
    }

    // Fusion headline: per iteration the solver streams the matrix
    // twice and nothing else; an unfused implementation would add ~10
    // vector round-trips of n words each.
    BicgstabResult one = runBicgstab(matrix, b, 1, cfg, 8);
    double matrix_bytes = 2.0 * (8.0 * matrix.nnz() + 4 * matrix.rows());
    double unfused_extra = 10.0 * 8.0 * matrix.rows();
    std::printf("\nFused DRAM bytes/iteration   : %llu\n",
                static_cast<unsigned long long>(one.timing.dram.bytes));
    std::printf("Matrix stream alone          : %.0f\n", matrix_bytes);
    std::printf("Unfused intermediates avoided: %.0f (%.0f%% extra)\n",
                unfused_extra, 100.0 * unfused_extra / matrix_bytes);
    return 0;
}
