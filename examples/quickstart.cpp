/**
 * @file
 * Quickstart: run one sparse kernel on the Capstan simulator.
 *
 * Builds a small CSR matrix, multiplies it by a dense vector on a
 * simulated Capstan with HBM2E memory, verifies the result against the
 * scalar reference, and prints the headline performance counters.
 *
 *   $ ./build/examples/quickstart
 */

#include <cstdio>

#include "apps/spmv.hpp"
#include "workloads/synth.hpp"

using namespace capstan;
using namespace capstan::apps;
namespace sim = capstan::sim;

int
main()
{
    // 1. A workload: a 2,000 x 2,000 circuit-like sparse matrix and a
    //    dense input vector.
    auto matrix = workloads::circuitMatrix(2000, 14000, /*seed=*/42);
    sparse::DenseVector x(matrix.cols());
    for (Index i = 0; i < x.size(); ++i)
        x[i] = 1.0f / (1.0f + i % 17);

    std::printf("Matrix: %d x %d, %d non-zeros (%.3f%% dense)\n",
                matrix.rows(), matrix.cols(), matrix.nnz(),
                100.0 * matrix.nnz() / matrix.rows() / matrix.cols());

    // 2. A machine: the paper's primary design point (Table 7).
    sim::CapstanConfig cfg =
        sim::CapstanConfig::capstan(sim::MemTech::HBM2E);

    // 3. Run CSR SpMV: functional execution plus cycle-level timing.
    SpmvResult result = runSpmvCsr(matrix, x, cfg, /*tiles=*/8);

    // 4. Verify against the golden reference.
    auto want = spmvReference(matrix, x);
    double err = relativeError(result.out.data(), want.data());
    std::printf("Functional check: relative error %.2e (%s)\n", err,
                err < 1e-6 ? "PASS" : "FAIL");

    // 5. Inspect the timing.
    const AppTiming &t = result.timing;
    std::printf("\nSimulated execution (8 tiles, %s):\n",
                sim::memTechName(cfg.dram.tech).c_str());
    std::printf("  cycles          : %llu (%.2f us at %.1f GHz)\n",
                static_cast<unsigned long long>(t.cycles),
                t.runtime_ms * 1000.0, cfg.clock_ghz);
    std::printf("  DRAM traffic    : %llu bytes in %llu bursts\n",
                static_cast<unsigned long long>(t.dram.bytes),
                static_cast<unsigned long long>(t.dram.bursts));
    std::printf("  SpMU bank use   : %.1f%% (grants %llu)\n",
                100.0 * t.spmu.bankUtilization(cfg.spmu.banks),
                static_cast<unsigned long long>(t.spmu.grants));
    std::printf("  elided reads    : %llu\n",
                static_cast<unsigned long long>(t.spmu.elided_reads));
    std::printf("  active lanes/cyc: %.1f of %d\n",
                t.totals.active_lane_cycles / t.cycles,
                cfg.spmu.lanes * 8);
    return err < 1e-6 ? 0 : 1;
}
