#!/usr/bin/env bash
# coverage: measure line coverage of the sparse storage layer.
#
# Configures a dedicated Debug build with CAPSTAN_COVERAGE=ON
# (gcov-style instrumentation), runs the unit-test label, and reports
# per-file line coverage for src/sparse/ via gcovr. The compressed
# storage codec (src/sparse/compressed.cpp) is the one piece of the
# tree where an untested branch is a silent data-corruption risk, so
# its line coverage is enforced against a floor:
#
#   src/sparse/ line coverage >= 80%
#
# The floor is deliberately per-directory rather than per-repo: the
# simulation layers are exercised end to end by the differential
# harnesses, whose coverage is better measured by their own byte
# -identity contracts than by line counts.
#
# Also writes an lcov-format report to <build-dir>/coverage.lcov for
# CI artifact upload.
#
# On hosts without the tooling (gcovr, gcov, cmake) the check skips
# (exit 77, ctest's SKIP_RETURN_CODE) instead of failing: a missing
# host package is not a coverage regression.
#
# Usage: coverage.sh [build-dir]   (default: build-coverage)
set -euo pipefail

skip() {
    echo "coverage: SKIP — $1"
    exit 77
}

build_dir="${1:-build-coverage}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
floor_pct=80

command -v cmake >/dev/null 2>&1 || skip "cmake not found"
command -v gcovr >/dev/null 2>&1 || skip "gcovr not found"
command -v gcov >/dev/null 2>&1 || skip "gcov not found"

cmake -S "$repo_root" -B "$build_dir" \
    -DCMAKE_BUILD_TYPE=Debug -DCAPSTAN_COVERAGE=ON >/dev/null
cmake --build "$build_dir" -j "$(nproc)" >/dev/null

# Stale counters from a previous run would dilute the numbers.
find "$build_dir" -name '*.gcda' -delete

ctest --test-dir "$build_dir" -L unit --output-on-failure \
    -j "$(nproc)" >/dev/null

gcovr --root "$repo_root" "$build_dir" \
    --filter 'src/.*' \
    --lcov "$build_dir/coverage.lcov" \
    --print-summary

# Enforce the documented floor on src/sparse/ line coverage.
sparse_pct=$(gcovr --root "$repo_root" "$build_dir" \
    --filter 'src/sparse/.*' --json-summary-pretty --json-summary - |
    python3 -c '
import json
import sys

doc = json.load(sys.stdin)
print(int(doc.get("line_percent", 0)))
')

echo "coverage: src/sparse/ line coverage ${sparse_pct}%" \
     "(floor ${floor_pct}%)"
if [ "$sparse_pct" -lt "$floor_pct" ]; then
    echo "coverage: FAIL — src/sparse/ line coverage below the" \
         "${floor_pct}% floor" >&2
    exit 1
fi
