#!/usr/bin/env bash
# check_intra_determinism: binary-level differential determinism check
# for intra-run parallelism.
#
# The in-process harness (tests/test_intra_parallel.cpp) proves the
# Machine's stats are byte-identical at every --intra-jobs value; this
# script proves the same through the real binaries, where a divergence
# could also come from CLI plumbing, the report renderers, or
# environment handling:
#
#   1. `capstan-report --all --preset quick` must emit byte-identical
#      JSON at --intra-jobs 1, --intra-jobs 8, and --intra-jobs 8
#      under CAPSTAN_NO_INTRA=1 (the serial bisect switch).
#   2. Single runs must be byte-identical across --intra-jobs and
#      under CAPSTAN_NO_FF=1 x CAPSTAN_NO_INTRA=1. The fast-forward
#      switch is latched once per process (static-cached in the
#      stepping engine), so these points *require* the process
#      boundary only a shell harness provides — they cannot be
#      toggled inside the gtest binary.
#
# Usage: check_intra_determinism.sh [build-dir]   (default: build)
set -euo pipefail

build_dir="${1:-build}"
run="$build_dir/capstan-run"
report="$build_dir/capstan-report"
[ -x "$run" ] || { echo "missing $run" >&2; exit 1; }
[ -x "$report" ] || { echo "missing $report" >&2; exit 1; }

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail() {
    echo "check_intra_determinism: FAIL — $1" >&2
    exit 1
}

# --- 1. Full quick report across worker counts. --------------------------
quick=(--all --preset quick --markdown none)
"$report" "${quick[@]}" --intra-jobs 1 --json "$tmp/r1.json" \
    >/dev/null 2>&1
"$report" "${quick[@]}" --intra-jobs 8 --json "$tmp/r8.json" \
    >/dev/null 2>&1
cmp -s "$tmp/r1.json" "$tmp/r8.json" ||
    fail "quick report diverged between --intra-jobs 1 and 8"
CAPSTAN_NO_INTRA=1 "$report" "${quick[@]}" --intra-jobs 8 \
    --json "$tmp/rni.json" >/dev/null 2>&1
cmp -s "$tmp/r1.json" "$tmp/rni.json" ||
    fail "quick report diverged under CAPSTAN_NO_INTRA=1"
echo "quick report: byte-identical at intra-jobs 1 / 8 / kill-switch"

# --- 2. Single runs crossed with the fast-forward kill switch. -----------
point=(--scale 0.02 --tiles 4 --iterations 1 --json)
for app in pagerank bfs spmspm; do
    "$run" --app "$app" "${point[@]}" --intra-jobs 1 \
        --output "$tmp/$app.base.json"
    "$run" --app "$app" "${point[@]}" --intra-jobs 8 \
        --output "$tmp/$app.i8.json"
    cmp -s "$tmp/$app.base.json" "$tmp/$app.i8.json" ||
        fail "$app diverged at --intra-jobs 8"
    CAPSTAN_NO_FF=1 "$run" --app "$app" "${point[@]}" --intra-jobs 8 \
        --output "$tmp/$app.noff.json"
    cmp -s "$tmp/$app.base.json" "$tmp/$app.noff.json" ||
        fail "$app diverged under CAPSTAN_NO_FF=1 --intra-jobs 8"
    CAPSTAN_NO_FF=1 CAPSTAN_NO_INTRA=1 "$run" --app "$app" \
        "${point[@]}" --intra-jobs 8 --output "$tmp/$app.serial.json"
    cmp -s "$tmp/$app.base.json" "$tmp/$app.serial.json" ||
        fail "$app diverged under CAPSTAN_NO_FF=1 CAPSTAN_NO_INTRA=1"
    echo "$app: byte-identical across intra-jobs x {ff, no-ff}"
done

echo "check_intra_determinism: OK"
