#!/usr/bin/env python3
"""End-to-end smoke test for the capstan-serve daemon.

Starts capstan-serve on a private Unix socket, then acts as a protocol
client (docs/SERVE_PROTOCOL.md):

  1. ping/pong liveness;
  2. a malformed line gets a structured error and the connection
     survives;
  3. a single run job streams accepted/started/progress/result, and
     the result's "stats" bytes are byte-identical to what
     `capstan-run --json --compact` prints for the same point;
  4. the same job resubmitted is served from the warm dataset cache
     (observable in the stats op) with identical bytes;
  5. a small sweep streams one progress event per point;
  6. SIGTERM drains cleanly: shutdown event, EOF, exit code 0, and
     the socket file is removed.

Exits non-zero with a diagnostic on the first failed check. Run by
ctest as `serve_smoke` (and under TSan in CI); needs only the build
tree, no network.
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

RUN_JOB = {
    "type": "run",
    "options": {
        "app": "spmv",
        "config": "capstan",
        "scale": 0.02,
        "tiles": 4,
        "iterations": 1,
    },
}

SWEEP_JOB = {
    "type": "sweep",
    "options": {"scale": 0.02, "tiles": 4, "iterations": 1},
    "axes": {"app": ["spmv", "bfs"]},
}

RUN_CLI_FLAGS = [
    "--app", "spmv", "--config", "capstan", "--scale", "0.02",
    "--tiles", "4", "--iterations", "1", "--json", "--compact",
]


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


class Client:
    """A line-oriented protocol client over the daemon's socket."""

    def __init__(self, path, timeout=60.0):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(timeout)
        self.sock.connect(path)
        self.buffer = b""

    def close(self):
        self.sock.close()

    def send(self, doc):
        line = doc if isinstance(doc, str) else json.dumps(doc)
        self.sock.sendall(line.encode() + b"\n")

    def read_line(self):
        """The next event line, or None on EOF/timeout."""
        while b"\n" not in self.buffer:
            try:
                chunk = self.sock.recv(65536)
            except socket.timeout:
                return None
            if not chunk:
                return None
            self.buffer += chunk
        line, self.buffer = self.buffer.split(b"\n", 1)
        return line.decode()

    def read_event(self, name):
        """Skip forward to the next event named `name` (parsed)."""
        while True:
            line = self.read_line()
            if line is None:
                fail(f"EOF/timeout while waiting for {name!r} event")
            doc = json.loads(line)
            if doc.get("event") == name:
                return doc

    def result_stats_bytes(self):
        """Read to the next result event; return (doc, stats bytes).

        The stats bytes are sliced out of the raw line (the protocol
        guarantees "stats" is the final member), not re-serialized, so
        they can be compared byte-for-byte with CLI output.
        """
        while True:
            line = self.read_line()
            if line is None:
                fail("EOF/timeout while waiting for result event")
            doc = json.loads(line)
            if doc.get("event") != "result":
                continue
            marker = '"stats":'
            pos = line.find(marker)
            if pos < 0 or not line.endswith("}"):
                fail(f"result line has no stats member: {line}")
            return doc, line[pos + len(marker):-1]


def wait_for_socket(path, proc, budget=60.0):
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            fail(f"daemon exited early with code {proc.returncode}")
        if os.path.exists(path):
            try:
                probe = Client(path, timeout=5.0)
                probe.close()
                return
            except OSError:
                pass
        time.sleep(0.05)
    fail(f"daemon socket {path} never became connectable")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True,
                        help="CMake build tree with the capstan binaries")
    args = parser.parse_args()

    serve_bin = os.path.join(args.build_dir, "capstan-serve")
    run_bin = os.path.join(args.build_dir, "capstan-run")
    for binary in (serve_bin, run_bin):
        if not os.access(binary, os.X_OK):
            fail(f"missing binary {binary}")

    workdir = tempfile.mkdtemp(prefix="capstan-serve-smoke-")
    sock_path = os.path.join(workdir, "serve.sock")

    proc = subprocess.Popen(
        [serve_bin, "--socket", sock_path, "--jobs", "1"],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
    try:
        wait_for_socket(sock_path, proc)
        client = Client(sock_path, timeout=300.0)

        # 1. Liveness.
        client.send({"op": "ping", "id": 1})
        pong = client.read_event("pong")
        if pong.get("id") != 1:
            fail(f"pong did not echo the request id: {pong}")
        print("serve_smoke: ping/pong ok")

        # 2. Malformed input gets a structured error; the line-based
        # stream stays usable afterwards.
        client.send("{this is not json")
        err = client.read_event("error")
        if err.get("code") != "parse_error":
            fail(f"expected parse_error, got {err}")
        client.send({"op": "ping", "id": 2})
        client.read_event("pong")
        print("serve_smoke: malformed line -> structured error ok")

        # 3. Run job: streamed lifecycle plus CLI byte-identity.
        client.send({"op": "submit", "id": 3, "job": RUN_JOB})
        accepted = client.read_event("accepted")
        job_id = accepted["job_id"]
        started = client.read_event("started")
        if started["job_id"] != job_id:
            fail(f"started for wrong job: {started}")
        progress = client.read_event("progress")
        if progress["done"] != 1 or progress["app"] != "spmv":
            fail(f"unexpected progress event: {progress}")
        result, stats = client.result_stats_bytes()
        if not result.get("ok"):
            fail(f"run job failed: {result}")
        cli = subprocess.run(
            [run_bin] + RUN_CLI_FLAGS, check=True,
            capture_output=True, text=True).stdout.strip()
        if stats != cli:
            fail("serve stats bytes differ from capstan-run output\n"
                 f"  serve: {stats[:200]}...\n  cli:   {cli[:200]}...")
        print("serve_smoke: run result is byte-identical to the CLI")

        # 4. Resubmission is served from the warm dataset cache.
        client.send({"op": "stats", "id": 4})
        before = client.read_event("stats")
        client.send({"op": "submit", "id": 5, "job": RUN_JOB})
        again, stats2 = client.result_stats_bytes()
        if not again.get("ok") or stats2 != stats:
            fail("warm rerun produced different bytes")
        client.send({"op": "stats", "id": 6})
        after = client.read_event("stats")
        if after["dataset_cache"]["hits"] <= \
                before["dataset_cache"]["hits"]:
            fail(f"no cache hit on the second job: "
                 f"{before['dataset_cache']} -> "
                 f"{after['dataset_cache']}")
        if after["jobs"]["completed"] != \
                before["jobs"]["completed"] + 1:
            fail(f"completed counter wrong: {after['jobs']}")
        print("serve_smoke: second job hit the warm cache "
              f"(hits {before['dataset_cache']['hits']} -> "
              f"{after['dataset_cache']['hits']})")

        # 5. Sweeps stream one progress event per point.
        client.send({"op": "submit", "id": 7, "job": SWEEP_JOB})
        seen = 0
        while True:
            line = client.read_line()
            if line is None:
                fail("EOF/timeout during sweep")
            doc = json.loads(line)
            if doc.get("event") == "progress":
                seen += 1
            elif doc.get("event") == "result":
                if not doc.get("ok"):
                    fail(f"sweep failed: {doc}")
                break
        if seen != 2:
            fail(f"expected 2 sweep progress events, saw {seen}")
        print("serve_smoke: sweep streamed per-point progress")

        # 6. SIGTERM drains cleanly.
        proc.send_signal(signal.SIGTERM)
        saw_shutdown = False
        while True:
            line = client.read_line()
            if line is None:
                break
            if json.loads(line).get("event") == "shutdown":
                saw_shutdown = True
        if not saw_shutdown:
            fail("no shutdown event before EOF")
        code = proc.wait(timeout=60)
        if code != 0:
            fail(f"daemon exited {code} after SIGTERM")
        if os.path.exists(sock_path):
            fail("socket file survived the drain")
        client.close()
        print("serve_smoke: SIGTERM -> clean drain, exit 0")
        print("serve_smoke: PASS")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    main()
