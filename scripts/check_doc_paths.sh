#!/usr/bin/env bash
# Fail if any markdown doc references a repo file path that no longer
# exists. Keeps docs/ARCHITECTURE.md's source map honest as code moves.
#
# A "path reference" is a backtick-quoted token starting with a known
# top-level directory (src/, bench/, tests/, docs/, examples/,
# scripts/, .github/) or a top-level *.md / *.json file. Tokens
# containing globs, spaces, or placeholders are skipped. `path:line`
# references check the path part only. Run from anywhere; checks the
# repo the script lives in.

set -u
repo="$(cd "$(dirname "$0")/.." && pwd)"

missing="$(
    for doc in "$repo"/docs/*.md "$repo"/README.md; do
        [ -f "$doc" ] || continue
        grep -o '`[^`]*`' "$doc" | sed 's/^`//; s/`$//' | sort -u |
        while IFS= read -r token; do
            case "$token" in
                *'*'*|*' '*|*'<'*|*'{'*|*'$'*) continue ;;
                src/*|bench/*|tests/*|docs/*|examples/*|scripts/*|.github/*) ;;
                */*) continue ;;
                *.md|*.json) ;;
                *) continue ;;
            esac
            path="${token%%:*}"
            if [ ! -e "$repo/$path" ]; then
                echo "MISSING: $path (referenced by ${doc#"$repo"/})"
            fi
        done
    done
)"

if [ -n "$missing" ]; then
    echo "$missing"
    echo "check_doc_paths: stale file references found" >&2
    exit 1
fi
echo "check_doc_paths: all referenced paths exist"
