#!/usr/bin/env bash
# Docs hygiene, two checks:
#
# 1. Path check (always): fail if any markdown doc references a repo
#    file path that no longer exists. Keeps docs/ARCHITECTURE.md's
#    source map honest as code moves. A "path reference" is a
#    backtick-quoted token starting with a known top-level directory
#    (src/, bench/, tests/, docs/, examples/, scripts/, tools/,
#    data/, .github/) or a top-level *.md / *.json file. Tokens containing
#    globs, spaces, or placeholders are skipped. `path:line`
#    references check the path part only.
#
# 2. Command check (with `--commands [build_dir]`): extract every
#    documented capstan-run / capstan-sweep / capstan-report command
#    line (a code line whose first token is one of the binaries,
#    optionally prefixed ./build/, with backslash continuations
#    joined) and dry-run it against the built binaries (--dry-run
#    validates flags, runs nothing, writes nothing), so documented
#    commands can't rot. Skipped with a notice when the binaries are
#    not built. build_dir defaults to <repo>/build.
#
# Run from anywhere; checks the repo the script lives in.

set -u
repo="$(cd "$(dirname "$0")/.." && pwd)"

check_commands=0
build_dir="$repo/build"
if [ "${1:-}" = "--commands" ]; then
    check_commands=1
    [ -n "${2:-}" ] && build_dir="$2"
fi

missing="$(
    for doc in "$repo"/docs/*.md "$repo"/README.md; do
        [ -f "$doc" ] || continue
        grep -o '`[^`]*`' "$doc" | sed 's/^`//; s/`$//' | sort -u |
        while IFS= read -r token; do
            case "$token" in
                *'*'*|*' '*|*'<'*|*'{'*|*'$'*) continue ;;
                report.json|report.csv|metrics.csv) continue ;; # generated artifacts
                src/*|bench/*|tests/*|docs/*|examples/*|scripts/*|tools/*|data/*|.github/*) ;;
                */*) continue ;;
                *.md|*.json) ;;
                *) continue ;;
            esac
            path="${token%%:*}"
            if [ ! -e "$repo/$path" ]; then
                echo "MISSING: $path (referenced by ${doc#"$repo"/})"
            fi
        done
    done
)"

if [ -n "$missing" ]; then
    echo "$missing"
    echo "check_doc_paths: stale file references found" >&2
    exit 1
fi
echo "check_doc_paths: all referenced paths exist"

[ "$check_commands" = 1 ] || exit 0

for prog in capstan-run capstan-sweep capstan-report; do
    if [ ! -x "$build_dir/$prog" ]; then
        echo "check_doc_paths: $build_dir/$prog not built;" \
             "skipping the documented-command check"
        exit 0
    fi
done

failed=0
cmd_log="$(mktemp)"
trap 'rm -f "$cmd_log"' EXIT
for doc in "$repo"/docs/*.md "$repo"/README.md; do
    [ -f "$doc" ] || continue
    # Join backslash continuations, then keep lines whose first token
    # is a driver binary (optionally ./build/-prefixed or after a $).
    sed -e ':a' -e '/\\$/N; s/\\\n//; ta' "$doc" |
    grep -E '^[[:space:]]*(\$[[:space:]]+)?(\./build/)?capstan-(run|sweep|report)([[:space:]]|$)' |
    sed -E 's/^[[:space:]]*(\$[[:space:]]+)?(\.\/build\/)?//' |
    sed -E 's/[[:space:]]+#.*$//' |
    sort -u |
    while IFS= read -r cmd; do
        # shellcheck disable=SC2086
        set -- $cmd
        prog="$1"; shift
        if ! "$build_dir/$prog" "$@" --dry-run >/dev/null 2>&1; then
            echo "BROKEN COMMAND (${doc#"$repo"/}): $cmd"
        fi
    done > "$cmd_log" 2>&1
    if [ -s "$cmd_log" ]; then
        cat "$cmd_log"
        failed=1
    fi
done

if [ "$failed" = 1 ]; then
    echo "check_doc_paths: documented commands no longer parse" >&2
    exit 1
fi
echo "check_doc_paths: all documented driver commands dry-run cleanly"
