#!/usr/bin/env bash
# Run the curated .clang-tidy set over every first-party translation
# unit in the compilation database. Usage:
#
#   scripts/run_clang_tidy.sh <build-dir> [extra clang-tidy args...]
#
# Exit codes: 0 clean, 1 findings, 2 usage error, 77 clang-tidy not
# installed (ctest interprets 77 as SKIP via SKIP_RETURN_CODE — local
# trees without clang-tidy stay green; CI installs it and enforces).
set -euo pipefail

if [ "$#" -lt 1 ]; then
    echo "usage: $0 <build-dir> [clang-tidy args...]" >&2
    exit 2
fi
build_dir=$1
shift

repo_root=$(cd "$(dirname "$0")/.." && pwd)

if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "run_clang_tidy: no compile_commands.json in $build_dir" \
         "(configure with CMake first)" >&2
    exit 2
fi

tidy=$(command -v clang-tidy || true)
if [ -z "$tidy" ]; then
    # Probe versioned names (Debian/Ubuntu install clang-tidy-NN).
    for ver in 20 19 18 17 16 15 14; do
        if command -v "clang-tidy-$ver" >/dev/null 2>&1; then
            tidy="clang-tidy-$ver"
            break
        fi
    done
fi
if [ -z "$tidy" ]; then
    echo "run_clang_tidy: clang-tidy not installed; skipping (77)" >&2
    exit 77
fi

# First-party sources only: tests link gtest and benches link Google
# Benchmark, whose headers are not ours to fix.
mapfile -t sources < <(find "$repo_root/src" -name '*.cpp' | sort)

echo "run_clang_tidy: $tidy over ${#sources[@]} files"
status=0
"$tidy" -p "$build_dir" --quiet "$@" "${sources[@]}" || status=$?
if [ "$status" -ne 0 ]; then
    echo "run_clang_tidy: findings above (exit $status)" >&2
    exit 1
fi
echo "run_clang_tidy: clean"
