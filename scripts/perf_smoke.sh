#!/usr/bin/env bash
# perf_smoke: guard the simulation hot path's wall-clock.
#
# Times `capstan-report --all --preset quick --check` (the whole paper
# reproduction at bench-smoke scales, single-threaded so the number
# tracks the stepping engine rather than the host's core count) and
# fails when it regresses more than 2x against the reference recorded
# in BENCH_sweep.json — the value measured with the fast-forward
# stepping engine. The 2x headroom absorbs CI-runner noise; a real hot
# path regression (losing fast-forward coverage, reintroducing
# per-token allocation) blows well past it.
#
# When the newest report_quick measurement also records a
# jobs_1_intra_4 wall-clock, the same run is repeated with
# --intra-jobs 4 under the same 2x budget, guarding the worker-pool
# dispatch path (barrier overhead, oversubscription handling) the
# serial run never enters.
#
# On hosts that cannot produce a reference number — no python3, or a
# BENCH_sweep.json without a report_quick benchmark — the check skips
# (exit 77, ctest's SKIP_RETURN_CODE) instead of failing the suite:
# an unrelated host gap is not a perf regression.
#
# Usage: perf_smoke.sh [build-dir]   (default: build)
set -euo pipefail

skip() {
    echo "perf_smoke: SKIP — $1"
    exit 77
}

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

command -v python3 >/dev/null 2>&1 ||
    skip "python3 not found; cannot read the reference wall-clock"
[ -f "$repo_root/BENCH_sweep.json" ] ||
    skip "BENCH_sweep.json not found"

# Prints "<jobs_1> <jobs_1_intra_4-or-empty>" from the newest
# report_quick measurement.
refs=$(python3 - "$repo_root/BENCH_sweep.json" <<'EOF'
import json
import sys

try:
    doc = json.load(open(sys.argv[1]))
except (OSError, ValueError):
    sys.exit(0)
for bench in doc.get("benchmarks", []):
    if bench.get("benchmark", "").startswith("report_quick"):
        try:
            wall = bench["measurements"][-1]["wall_ms"]
            line = str(int(wall["jobs_1"]))
        except (KeyError, IndexError, TypeError, ValueError):
            break
        try:
            line += " " + str(int(wall["jobs_1_intra_4"]))
        except (KeyError, TypeError, ValueError):
            pass
        print(line)
        break
EOF
)
ref_ms=$(echo "$refs" | awk '{print $1}')
ref_intra_ms=$(echo "$refs" | awk '{print $2}')
[ -n "$ref_ms" ] ||
    skip "BENCH_sweep.json has no usable report_quick reference"

# time_quick <label> <ref_ms> [extra flags...]: run the quick report
# and fail on a >2x regression against the recorded reference.
time_quick() {
    local label="$1" ref="$2"
    shift 2
    local start_ns end_ns ms budget_ms
    start_ns=$(date +%s%N)
    "$build_dir/capstan-report" --all --preset quick --check --jobs 1 \
        --reference "$repo_root/data/paper_reference.json" \
        --markdown none --json none "$@" >/dev/null
    end_ns=$(date +%s%N)
    ms=$(((end_ns - start_ns) / 1000000))
    budget_ms=$((ref * 2))
    echo "perf_smoke: ${label}: ${ms} ms (reference ${ref} ms," \
         "budget ${budget_ms} ms)"
    if [ "$ms" -gt "$budget_ms" ]; then
        echo "perf_smoke: FAIL — ${label} quick report wall-clock" \
             "regressed >2x against BENCH_sweep.json" >&2
        exit 1
    fi
}

time_quick "serial" "$ref_ms"
if [ -n "$ref_intra_ms" ]; then
    time_quick "intra-jobs 4" "$ref_intra_ms" --intra-jobs 4
else
    echo "perf_smoke: no jobs_1_intra_4 reference recorded;" \
         "skipping the intra-parallel timing"
fi
