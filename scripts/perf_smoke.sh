#!/usr/bin/env bash
# perf_smoke: guard the simulation hot path's wall-clock.
#
# Times `capstan-report --all --preset quick --check` (the whole paper
# reproduction at bench-smoke scales, single-threaded so the number
# tracks the stepping engine rather than the host's core count) and
# fails when it regresses more than 2x against the reference recorded
# in BENCH_sweep.json — the value measured with the fast-forward
# stepping engine. The 2x headroom absorbs CI-runner noise; a real hot
# path regression (losing fast-forward coverage, reintroducing
# per-token allocation) blows well past it.
#
# On hosts that cannot produce a reference number — no python3, or a
# BENCH_sweep.json without a report_quick benchmark — the check skips
# (exit 77, ctest's SKIP_RETURN_CODE) instead of failing the suite:
# an unrelated host gap is not a perf regression.
#
# Usage: perf_smoke.sh [build-dir]   (default: build)
set -euo pipefail

skip() {
    echo "perf_smoke: SKIP — $1"
    exit 77
}

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

command -v python3 >/dev/null 2>&1 ||
    skip "python3 not found; cannot read the reference wall-clock"
[ -f "$repo_root/BENCH_sweep.json" ] ||
    skip "BENCH_sweep.json not found"

ref_ms=$(python3 - "$repo_root/BENCH_sweep.json" <<'EOF'
import json
import sys

try:
    doc = json.load(open(sys.argv[1]))
except (OSError, ValueError):
    sys.exit(0)
for bench in doc.get("benchmarks", []):
    if bench.get("benchmark", "").startswith("report_quick"):
        try:
            print(int(bench["measurements"][-1]["wall_ms"]["jobs_1"]))
        except (KeyError, IndexError, TypeError, ValueError):
            pass
        break
EOF
)
[ -n "$ref_ms" ] ||
    skip "BENCH_sweep.json has no usable report_quick reference"

start_ns=$(date +%s%N)
"$build_dir/capstan-report" --all --preset quick --check --jobs 1 \
    --reference "$repo_root/data/paper_reference.json" \
    --markdown none --json none >/dev/null
end_ns=$(date +%s%N)

ms=$(((end_ns - start_ns) / 1000000))
budget_ms=$((ref_ms * 2))
echo "perf_smoke: ${ms} ms (reference ${ref_ms} ms, budget ${budget_ms} ms)"
if [ "$ms" -gt "$budget_ms" ]; then
    echo "perf_smoke: FAIL — quick report wall-clock regressed >2x" \
         "against BENCH_sweep.json" >&2
    exit 1
fi
