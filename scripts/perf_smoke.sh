#!/usr/bin/env bash
# perf_smoke: guard the simulation hot path's wall-clock.
#
# Times `capstan-report --all --preset quick --check` (the whole paper
# reproduction at bench-smoke scales, single-threaded so the number
# tracks the stepping engine rather than the host's core count) and
# fails when it regresses more than 2x against the reference recorded
# in BENCH_sweep.json — the value measured with the fast-forward
# stepping engine. The 2x headroom absorbs CI-runner noise; a real hot
# path regression (losing fast-forward coverage, reintroducing
# per-token allocation) blows well past it.
#
# Usage: perf_smoke.sh [build-dir]   (default: build)
set -euo pipefail

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

ref_ms=$(python3 - "$repo_root/BENCH_sweep.json" <<'EOF'
import json
import sys

doc = json.load(open(sys.argv[1]))
for bench in doc["benchmarks"]:
    if bench.get("benchmark", "").startswith("report_quick"):
        print(int(bench["measurements"][-1]["wall_ms"]["jobs_1"]))
        break
else:
    sys.exit("BENCH_sweep.json has no report_quick benchmark")
EOF
)

start_ns=$(date +%s%N)
"$build_dir/capstan-report" --all --preset quick --check --jobs 1 \
    --reference "$repo_root/data/paper_reference.json" \
    --markdown none --json none >/dev/null
end_ns=$(date +%s%N)

ms=$(((end_ns - start_ns) / 1000000))
budget_ms=$((ref_ms * 2))
echo "perf_smoke: ${ms} ms (reference ${ref_ms} ms, budget ${budget_ms} ms)"
if [ "$ms" -gt "$budget_ms" ]; then
    echo "perf_smoke: FAIL — quick report wall-clock regressed >2x" \
         "against BENCH_sweep.json" >&2
    exit 1
fi
