#!/usr/bin/env bash
# Download a small curated subset of the paper's Table 6 datasets into
# a directory capstan-run / capstan-report can use with --dataset-dir.
#
# SuiteSparse matrices come from sparse.tamu.edu as Matrix Market
# tarballs and are unpacked to <dir>/<Table6-name>.mtx; SNAP graphs
# come from snap.stanford.edu as gzipped edge lists and land at
# <dir>/<Table6-name>.txt. Files that already exist are kept, so the
# script is safe to re-run. Needs curl (or wget), tar, and gunzip;
# nothing is fetched in CI — the checked-in data/fixtures/ files cover
# the plumbing there.
#
# Usage: fetch_datasets.sh [dir]   (default: data/real)
set -euo pipefail

dir="${1:-data/real}"
mkdir -p "$dir"

fetch() {
    local url="$1" out="$2"
    if command -v curl >/dev/null 2>&1; then
        curl -fsSL "$url" -o "$out"
    elif command -v wget >/dev/null 2>&1; then
        wget -q "$url" -O "$out"
    else
        echo "fetch_datasets: need curl or wget" >&2
        exit 1
    fi
}

# name group  (SuiteSparse: https://sparse.tamu.edu/<group>/<name>)
suitesparse() {
    local name="$1" group="$2" tmp
    local out="$dir/$name.mtx"
    if [ -f "$out" ]; then
        echo "have   $out"
        return
    fi
    echo "fetch  $name (SuiteSparse/$group)"
    tmp="$dir/.$name.tar.gz"
    fetch "https://suitesparse-collection-website.herokuapp.com/MM/$group/$name.tar.gz" "$tmp" ||
        fetch "https://sparse.tamu.edu/MM/$group/$name.tar.gz" "$tmp"
    tar -xzf "$tmp" -C "$dir" "$name/$name.mtx"
    mv "$dir/$name/$name.mtx" "$out"
    rmdir "$dir/$name"
    rm -f "$tmp"
    echo "wrote  $out"
}

snap() {
    local name="$1" tmp
    local out="$dir/$name.txt"
    if [ -f "$out" ]; then
        echo "have   $out"
        return
    fi
    echo "fetch  $name (SNAP)"
    tmp="$dir/.$name.txt.gz"
    fetch "https://snap.stanford.edu/data/$name.txt.gz" "$tmp"
    gunzip -c "$tmp" > "$out"
    rm -f "$tmp"
    echo "wrote  $out"
}

# Linear algebra (SpMV / M+M / BiCGStab, Table 6 top).
suitesparse ckt11752_dc_1 IBM_EDA
suitesparse Trefethen_20000 JGD_Trefethen
suitesparse bcsstk30 HB

# SpMSpM (Table 6 lower-middle).
suitesparse qc324 Bai
suitesparse mbeacxc HB

# Graphs (PR / BFS / SSSP, Table 6 middle). usroads-48 is hosted by
# SuiteSparse; the rest are SNAP edge lists. flickr has no public
# download — the paper's sensitivity studies substitute
# p2p-Gnutella31, which is fetched here for the same purpose.
suitesparse usroads-48 Gleich
snap web-Stanford
snap p2p-Gnutella31

echo
echo "Done. Point the tools at the directory, e.g.:"
echo "  ./build/capstan-run --app spmv --dataset bcsstk30 --dataset-dir $dir"
echo "  ./build/capstan-report --all --preset quick --dataset-dir $dir"
