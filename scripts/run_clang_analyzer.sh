#!/usr/bin/env bash
# Run the clang static analyzer (the clang-analyzer-* checks, path-
# sensitive symbolic execution) over every first-party translation
# unit in the compilation database. Kept separate from
# scripts/run_clang_tidy.sh on purpose: the curated .clang-tidy set
# deliberately contains no clang-analyzer-* checks (they are an order
# of magnitude slower), so this script is the analyzer's only entry
# point and the two layers can be enforced independently. Usage:
#
#   scripts/run_clang_analyzer.sh <build-dir> [extra clang-tidy args...]
#
# Exit codes: 0 clean, 1 findings, 2 usage error, 77 clang-tidy not
# installed (ctest interprets 77 as SKIP via SKIP_RETURN_CODE — local
# trees without clang-tidy stay green; CI installs it and enforces).
set -euo pipefail

if [ "$#" -lt 1 ]; then
    echo "usage: $0 <build-dir> [clang-tidy args...]" >&2
    exit 2
fi
build_dir=$1
shift

repo_root=$(cd "$(dirname "$0")/.." && pwd)

if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "run_clang_analyzer: no compile_commands.json in $build_dir" \
         "(configure with CMake first)" >&2
    exit 2
fi

tidy=$(command -v clang-tidy || true)
if [ -z "$tidy" ]; then
    # Probe versioned names (Debian/Ubuntu install clang-tidy-NN).
    for ver in 20 19 18 17 16 15 14; do
        if command -v "clang-tidy-$ver" >/dev/null 2>&1; then
            tidy="clang-tidy-$ver"
            break
        fi
    done
fi
if [ -z "$tidy" ]; then
    echo "run_clang_analyzer: clang-tidy not installed; skipping (77)" >&2
    exit 77
fi

mapfile -t sources < <(find "$repo_root/src" -name '*.cpp' | sort)

echo "run_clang_analyzer: $tidy (clang-analyzer-*) over" \
     "${#sources[@]} files"
status=0
"$tidy" -p "$build_dir" --quiet \
    --checks='-*,clang-analyzer-*' \
    --warnings-as-errors='clang-analyzer-*' \
    "$@" "${sources[@]}" || status=$?
if [ "$status" -ne 0 ]; then
    echo "run_clang_analyzer: findings above (exit $status)" >&2
    exit 1
fi
echo "run_clang_analyzer: clean"
