#!/usr/bin/env python3
"""capstan-lint: project-invariant static checks over src/ (all
classes) and tests/ + tools/ (the determinism classes — goldens and
fixtures feed byte-compared artifacts too; seeded lint/audit fixture
corpora are excluded).

The reproduction's correctness claims rest on invariants the compiler
cannot see: byte-identical stats across thread counts and platforms, a
single validated CLI parse path with an exit-2 usage-error contract,
and an output schema that documents every emitted stat key. This tool
turns those conventions into machine-checked properties (run as the
`lint`-labeled ctest jobs and the CI lint job).

Lint classes
------------
unordered-iter   Iterating a std::unordered_map/unordered_set.
                 Bucket order is an implementation detail of the
                 standard library, so any iteration that feeds stats,
                 JSON, or Markdown makes reports platform-dependent.
                 Declarations are collected from the file and its
                 same-stem header/source sibling.
nondet-source    rand()/srand(), std::random_device, time(), or a
                 chrono clock's now() in simulation code: wall-clock
                 and entropy must never flow into results (workloads
                 use fixed-seed mt19937 engines instead).
pointer-print    Streaming a pointer value (`<< &x`, `<< ptr` via
                 void*/reinterpret_cast, printf %p): addresses are
                 randomized per run, so printing one breaks
                 byte-comparability.
raw-parse        Raw stoi/stod/atoi/strtol-family calls outside
                 src/driver/options.cpp (the single validated numeric
                 parse path behind the exit-2 usage-error contract).
pragma-once      A header without `#pragma once` before any code.
using-namespace  `using namespace` at any scope in a header leaks
                 into every includer.
schema-sync      Every JSON stat key emitted by the driver/report
                 writers is documented in docs/OUTPUT_SCHEMA.md, and
                 every study in data/paper_reference.json is
                 registered in src/report/study.cpp. With
                 --report-json, additionally: every tolerance-checked
                 reference metric was actually produced by a study.
worker-shared-state
                 A lambda dispatched on a common::WorkerPool writing a
                 member (`name_ = / += / ++`) without a `[index]`
                 subscript. Worker lambdas may only write per-worker /
                 per-tile slots (step_ctx_[w], stall_base_[t], ...);
                 a direct member write is a data race that TSan may
                 miss on lightly-contended runs and that silently
                 breaks the byte-identical-stats contract. Route the
                 value through the worker's StepCtx accumulator and
                 merge it in index order instead.
raw-csr          A raw CSR row accessor (.rowIndices/.rowValues/
                 .rowPtr/.rowLength/.colIdx) outside src/sparse/.
                 Matrix consumers must read through the
                 sparse::MatrixView seam so every app works with both
                 the plain-CSR and the compressed backing store
                 (--matrix-store); a direct CSR access silently pins
                 the code to one backing. Locally built CSR results
                 (an app's own product matrix) can wrap a local
                 MatrixView or suppress with a justification.
bad-suppression  A capstan-lint allow-comment without a justification.

Suppressing a finding
---------------------
Add, on the flagged line or an immediately preceding comment line:

    // capstan-lint: allow(<class>) -- <why this one is safe>

The justification after `--` is mandatory; an allow-comment without
one is itself a finding. See docs/STATIC_ANALYSIS.md.

Exit codes: 0 clean, 1 findings, 2 usage error (matching the repo's
CLI contract). Python 3.8+, standard library only.
"""

import argparse
import json
import os
import re
import sys
import tempfile
from pathlib import Path

LINT_CLASSES = (
    "unordered-iter",
    "nondet-source",
    "pointer-print",
    "raw-parse",
    "pragma-once",
    "using-namespace",
    "schema-sync",
    "worker-shared-state",
    "raw-csr",
    "bad-suppression",
)

# The one place raw numeric parsing is allowed: the validated parse
# helpers every CLI funnels through.
RAW_PARSE_ALLOWED = {os.path.join("src", "driver", "options.cpp")}

# The sparse layer itself implements the backings and may touch raw
# CSR arrays; everything else must go through sparse::MatrixView.
RAW_CSR_ALLOWED_PREFIX = os.path.join("src", "sparse") + os.sep
RAW_CSR_RE = re.compile(
    r"(?:\.|->)\s*(rowIndices|rowValues|rowPtr|rowLength|colIdx)"
    r"\s*\(")

# JSON writers whose .set("key") literals define the output schema.
SCHEMA_EMITTERS = (
    os.path.join("src", "driver", "runner.cpp"),
    os.path.join("src", "driver", "sweep.cpp"),
    os.path.join("src", "report", "render.cpp"),
)
SCHEMA_DOC = os.path.join("docs", "OUTPUT_SCHEMA.md")
REFERENCE_JSON = os.path.join("data", "paper_reference.json")
STUDY_REGISTRY = os.path.join("src", "report", "study.cpp")

NONDET_PATTERNS = (
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w_])time\s*\(\s*(?:NULL|nullptr|0|&)"),
     "time()"),
    (re.compile(r"_clock\s*::\s*now\s*\("), "chrono clock now()"),
)

POINTER_PRINT_PATTERNS = (
    (re.compile(r"<<\s*&[A-Za-z_]"), "streams an address-of"),
    (re.compile(r"<<\s*static_cast<\s*(?:const\s+)?void\s*\*"),
     "streams a void* cast"),
    (re.compile(r"<<\s*reinterpret_cast<"),
     "streams a reinterpret_cast"),
    (re.compile(r'%p[^A-Za-z0-9]|%p$'), "printf-style %p"),
)

RAW_PARSE_RE = re.compile(
    r"(?<![\w:.])(?:std\s*::\s*)?"
    r"(stoi|stol|stoll|stoul|stoull|stof|stod|stold|"
    r"atoi|atol|atoll|atof|"
    r"strtol|strtoll|strtoul|strtoull|strtof|strtod|strtold|"
    r"sscanf)\s*\(")

UNORDERED_DECL_RE = re.compile(r"std\s*::\s*unordered_(?:map|set)\s*<")

# A WorkerPool dispatch: `pool_->run(`, `pool.run(`, `pool->run(`.
WORKER_RUN_RE = re.compile(r"\b[A-Za-z_]*pool_?\s*(?:->|\.)\s*run\s*\(")
# An unsubscripted write to an underscore-suffixed member inside a
# worker lambda: assignment, compound assignment, or in/decrement.
# Subscripted slots (`name_[t] = ...`) never match: the identifier is
# followed by `[`, not an operator.
WORKER_WRITE_RE = re.compile(
    r"(?:\bthis\s*->\s*|(?<![\w.>]))([A-Za-z_]\w*_)\s*"
    r"(?:=(?!=)|[+\-*/%|&^]=|<<=|>>=|\+\+|--)")
WORKER_PREFIX_WRITE_RE = re.compile(
    r"(?:\+\+|--)\s*(?:this\s*->\s*)?([A-Za-z_]\w*_)\b(?!\s*\[)")
ALLOW_RE = re.compile(
    r"capstan-lint:\s*allow\(([a-z-]+)\)\s*(?:--\s*(.*))?")
SET_KEY_RE = re.compile(r'\.\s*set\(\s*"([^"]+)"')
STUDY_DECL_RE = re.compile(r'\{\s*"([A-Za-z0-9_]+)"\s*,\s*"')


class Finding:
    def __init__(self, path, line, cls, message):
        self.path = path
        self.line = line
        self.cls = cls
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.cls}] {self.message}"


def strip_comments(text):
    """Blank out comments, preserving line structure and offsets."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    j += 1
                    break
                if text[j] == "\n":  # unterminated; bail at EOL
                    break
                j += 1
            out.append(text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def collect_suppressions(lines):
    """Map line number -> {class: allow-comment line}.

    An allow-comment suppresses findings of its class on its own line,
    on any directly following comment-only lines, and on the first
    code line after the comment block. The allow-comment's own line is
    kept so a consumer (capstan-audit's stale-suppression class) can
    tell which suppressions actually absorbed a finding.
    """
    suppressed = {}
    findings = []
    for idx, line in enumerate(lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        cls, why = m.group(1), (m.group(2) or "").strip()
        if cls not in LINT_CLASSES:
            findings.append(Finding(
                "?", idx, "bad-suppression",
                f"allow({cls}) names an unknown lint class"))
            continue
        if not why:
            findings.append(Finding(
                "?", idx, "bad-suppression",
                f"allow({cls}) without a justification after '--'"))
            continue
        span = [idx]
        j = idx  # 0-based index of the next line
        while j < len(lines):
            stripped = lines[j].strip()
            span.append(j + 1)
            if stripped and not stripped.startswith("//"):
                break
            j += 1
        for ln in span:
            suppressed.setdefault(ln, {}).setdefault(cls, idx)
    return suppressed, findings


def unordered_names(text):
    """Names of variables/members declared as unordered containers."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(text):
        depth, j = 0, m.end() - 1
        while j < len(text):
            if text[j] == "<":
                depth += 1
            elif text[j] == ">":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        tail = text[j + 1:j + 200]
        dm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;={(,)]", tail)
        if dm:
            names.add(dm.group(1))
    return names


def worker_lambda_regions(code):
    """(first_line, body_text) of each lambda inside a WorkerPool
    run() dispatch. The body is located by brace-matching from the
    first `{` inside the call's parentheses (the lambda body; capture
    lists are `[...]` and cannot contain braces)."""
    regions = []
    for m in WORKER_RUN_RE.finditer(code):
        i, n = m.end(), len(code)
        depth = 1  # Inside run('s parentheses.
        while i < n and depth > 0:
            c = code[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
            elif c == "{":
                j, braces = i, 0
                while j < n:
                    if code[j] == "{":
                        braces += 1
                    elif code[j] == "}":
                        braces -= 1
                        if braces == 0:
                            break
                    j += 1
                regions.append((code.count("\n", 0, i) + 1,
                                code[i:j + 1]))
                i = j
            i += 1
    return regions


# The determinism trio also runs over tests/ and tools/: goldens and
# fixtures feed byte-compared artifacts, so they must be as
# deterministic as src/. The structural/layering classes stay
# src-only (tests legitimately parse strings, print addresses of
# nothing, and include what they like).
DETERMINISM_CLASSES = frozenset(
    {"unordered-iter", "nondet-source", "pointer-print",
     "bad-suppression"})


def lint_source(relpath, text, sibling_text="", classes=None,
                used_suppressions=None):
    """Per-file lint classes over one source/header file.

    @p classes restricts which lint classes run (None = all).
    @p used_suppressions, when a set, collects
    (relpath, allow_line, class) for every suppression that absorbed
    a live finding — the input for capstan-audit's stale-suppression
    class.
    """
    findings = []
    lines = text.splitlines()
    suppressed, supp_findings = collect_suppressions(lines)
    for f in supp_findings:
        if classes is not None and f.cls not in classes:
            continue
        f.path = relpath
        findings.append(f)
    code = strip_comments(text)
    code_lines = code.splitlines()

    def add(line_no, cls, message):
        if classes is not None and cls not in classes:
            return
        allow_line = suppressed.get(line_no, {}).get(cls)
        if allow_line is not None:
            if used_suppressions is not None:
                used_suppressions.add((relpath, allow_line, cls))
            return
        findings.append(Finding(relpath, line_no, cls, message))

    is_header = relpath.endswith((".hpp", ".h"))

    # pragma-once / using-namespace -----------------------------------
    if is_header:
        if "#pragma once" not in code:
            add(1, "pragma-once", "header without #pragma once")
        else:
            for idx, line in enumerate(code_lines, start=1):
                stripped = line.strip()
                if not stripped:
                    continue
                if not stripped.startswith("#pragma once"):
                    add(idx, "pragma-once",
                        "header code before #pragma once")
                break
        for idx, line in enumerate(code_lines, start=1):
            if re.search(r"(?<![\w_])using\s+namespace\s+[\w:]+", line):
                add(idx, "using-namespace",
                    "using-namespace in a header leaks into every "
                    "includer")

    # unordered-iter ---------------------------------------------------
    names = unordered_names(code) | unordered_names(
        strip_comments(sibling_text))
    if names:
        name_alt = "|".join(sorted(re.escape(n) for n in names))
        iter_res = (
            re.compile(r"for\s*\([^;)]*:\s*(?:this->)?(" + name_alt +
                       r")\s*\)"),
            # begin() only: a bare end() comparison is the find/erase
            # lookup idiom and touches no bucket order.
            re.compile(r"\b(" + name_alt + r")\s*\.\s*c?r?begin\s*\("),
        )
        for idx, line in enumerate(code_lines, start=1):
            for rx in iter_res:
                m = rx.search(line)
                if m:
                    add(idx, "unordered-iter",
                        f"iteration over unordered container "
                        f"'{m.group(1)}' (bucket order is platform-"
                        f"dependent)")
                    break

    # nondet-source ----------------------------------------------------
    for idx, line in enumerate(code_lines, start=1):
        for rx, what in NONDET_PATTERNS:
            if rx.search(line):
                add(idx, "nondet-source",
                    f"{what}: entropy/wall-clock must not flow into "
                    f"results")

    # pointer-print ----------------------------------------------------
    for idx, line in enumerate(code_lines, start=1):
        for rx, what in POINTER_PRINT_PATTERNS:
            if rx.search(line):
                add(idx, "pointer-print",
                    f"{what}: addresses are randomized per run")

    # raw-parse --------------------------------------------------------
    if relpath.replace("\\", "/") not in {
            p.replace("\\", "/") for p in RAW_PARSE_ALLOWED}:
        for idx, line in enumerate(code_lines, start=1):
            m = RAW_PARSE_RE.search(line)
            if m:
                add(idx, "raw-parse",
                    f"raw {m.group(1)}() outside the validated parse "
                    f"helpers in src/driver/options.cpp")

    # raw-csr ----------------------------------------------------------
    if not relpath.replace("\\", "/").startswith(
            RAW_CSR_ALLOWED_PREFIX.replace("\\", "/")):
        for idx, line in enumerate(code_lines, start=1):
            m = RAW_CSR_RE.search(line)
            if m:
                add(idx, "raw-csr",
                    f"raw CSR accessor .{m.group(1)}() outside "
                    f"src/sparse/; read through sparse::MatrixView so "
                    f"both --matrix-store backings work")

    # worker-shared-state ----------------------------------------------
    for first_line, body in worker_lambda_regions(code):
        for off, line in enumerate(body.splitlines()):
            for rx in (WORKER_WRITE_RE, WORKER_PREFIX_WRITE_RE):
                wm = rx.search(line)
                if wm:
                    add(first_line + off, "worker-shared-state",
                        f"worker lambda writes shared member "
                        f"'{wm.group(1)}' without a per-worker/"
                        f"per-tile subscript; accumulate in the "
                        f"worker's StepCtx and merge in index order")
                    break

    return findings


def documented_tokens(doc_text):
    """Tokens the schema doc counts as documenting a key."""
    tokens = set(re.findall(r"`([^`\s]+)`", doc_text))
    tokens |= set(re.findall(r'"([A-Za-z0-9_.-]+)"', doc_text))
    # `a`, `b` inside backticks like `row_hits / (row_hits + ...)`.
    for expr in re.findall(r"`([^`]+)`", doc_text):
        tokens |= set(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", expr))
    # CSV header listings are bare comma-separated words.
    for line in doc_text.splitlines():
        if "," in line and " " not in line.strip():
            tokens |= set(line.strip().split(","))
    return tokens


def lint_schema_sync(root, report_json=None):
    findings = []

    doc_path = root / SCHEMA_DOC
    if not doc_path.is_file():
        return [Finding(SCHEMA_DOC, 1, "schema-sync",
                        "output schema document is missing")]
    tokens = documented_tokens(doc_path.read_text(encoding="utf-8"))

    for rel in SCHEMA_EMITTERS:
        src = root / rel
        if not src.is_file():
            findings.append(Finding(rel, 1, "schema-sync",
                                    "schema emitter missing"))
            continue
        text = strip_comments(src.read_text(encoding="utf-8"))
        for idx, line in enumerate(text.splitlines(), start=1):
            for key in SET_KEY_RE.findall(line):
                if key not in tokens:
                    findings.append(Finding(
                        rel, idx, "schema-sync",
                        f"emitted stat key '{key}' is not documented "
                        f"in {SCHEMA_DOC}"))

    ref_path = root / REFERENCE_JSON
    reg_path = root / STUDY_REGISTRY
    if ref_path.is_file() and reg_path.is_file():
        try:
            ref = json.loads(ref_path.read_text(encoding="utf-8"))
        except ValueError as e:
            return findings + [Finding(REFERENCE_JSON, 1, "schema-sync",
                                       f"unparseable reference: {e}")]
        registered = set(STUDY_DECL_RE.findall(
            strip_comments(reg_path.read_text(encoding="utf-8"))))
        for study in ref.get("studies", {}):
            if study not in registered:
                findings.append(Finding(
                    REFERENCE_JSON, 1, "schema-sync",
                    f"reference study '{study}' is not registered in "
                    f"{STUDY_REGISTRY}"))

        if report_json is not None:
            findings += check_reference_metrics(ref, report_json)

    return findings


def check_reference_metrics(ref, report_json_path):
    """Checked reference metrics must exist in a produced report."""
    findings = []
    try:
        report = json.loads(
            Path(report_json_path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as e:
        return [Finding(str(report_json_path), 1, "schema-sync",
                        f"cannot read report json: {e}")]
    produced = {}
    for entry in report.get("results", []):
        produced[entry.get("name", "")] = set(
            entry.get("metrics", {}) or {})
    for study, body in ref.get("studies", {}).items():
        for metric, spec in body.get("metrics", {}).items():
            if not isinstance(spec, dict):
                continue
            if "rel" not in spec and "abs" not in spec:
                continue  # display-only entry
            if study in produced and metric not in produced[study]:
                findings.append(Finding(
                    REFERENCE_JSON, 1, "schema-sync",
                    f"checked metric '{study}/{metric}' was not "
                    f"produced by the study"))
    return findings


def iter_source_files(root):
    src = root / "src"
    for path in sorted(src.rglob("*")):
        if path.suffix in (".hpp", ".cpp", ".h"):
            yield path


def iter_aux_source_files(root):
    """C++ sources under tests/ and tools/, minus seeded fixtures
    (those are deliberately violating corpora for the self-tests)."""
    for tree in ("tests", "tools"):
        top = root / tree
        if not top.is_dir():
            continue
        for path in sorted(top.rglob("*")):
            if path.suffix not in (".hpp", ".cpp", ".h"):
                continue
            if "fixtures" in path.relative_to(root).parts:
                continue
            yield path


def lint_tree(root, report_json=None, used_suppressions=None):
    findings = []
    siblings = {}
    for path in iter_source_files(root):
        siblings.setdefault(path.with_suffix(""), []).append(path)
    for path in iter_source_files(root):
        rel = os.path.relpath(path, root)
        text = path.read_text(encoding="utf-8")
        sibling_text = ""
        for sib in siblings.get(path.with_suffix(""), []):
            if sib != path:
                sibling_text += sib.read_text(encoding="utf-8")
        findings += lint_source(rel, text, sibling_text,
                                used_suppressions=used_suppressions)
    for path in iter_aux_source_files(root):
        rel = os.path.relpath(path, root)
        findings += lint_source(rel, path.read_text(encoding="utf-8"),
                                classes=DETERMINISM_CLASSES,
                                used_suppressions=used_suppressions)
    findings += lint_schema_sync(root, report_json)
    return findings


# ---------------------------------------------------------------------
# Self-test: every lint class must catch its seeded fixture violation,
# and the clean fixtures must pass.
# ---------------------------------------------------------------------

def fixture_dir():
    return Path(__file__).resolve().parent / "fixtures"


def self_test():
    failures = []
    fixtures = sorted(fixture_dir().glob("*"))
    if not fixtures:
        print("capstan-lint self-test: no fixtures found", file=sys.stderr)
        return 1
    for fx in fixtures:
        if fx.name.startswith("clean"):
            expected = None
        else:
            m = re.match(r"bad_([a-z_]+)\.", fx.name)
            if not m:
                continue
            expected = m.group(1).replace("_", "-")
        found = lint_source(fx.name, fx.read_text(encoding="utf-8"))
        classes = {f.cls for f in found}
        if expected is None:
            if found:
                failures.append(
                    f"{fx.name}: expected clean, got {sorted(classes)}")
        else:
            if expected not in classes:
                failures.append(
                    f"{fx.name}: expected a {expected} finding, got "
                    f"{sorted(classes) or 'none'}")
            unexpected = classes - {expected}
            if unexpected:
                failures.append(
                    f"{fx.name}: unexpected extra findings "
                    f"{sorted(unexpected)}")

    failures += self_test_schema_sync()

    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL: {f}")
        return 1
    print(f"capstan-lint self-test: {len(fixtures)} fixtures OK, "
          f"schema-sync OK")
    return 0


def self_test_schema_sync():
    """Build a tiny broken tree; schema-sync must flag both halves."""
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        (root / "docs").mkdir()
        (root / "data").mkdir()
        (root / "src" / "driver").mkdir(parents=True)
        (root / "src" / "report").mkdir(parents=True)
        (root / "docs" / "OUTPUT_SCHEMA.md").write_text(
            "Documents `cycles` only.\n")
        (root / "src" / "driver" / "runner.cpp").write_text(
            'doc.set("cycles", 1);\ndoc.set("undocumented_key", 2);\n')
        (root / "src" / "driver" / "sweep.cpp").write_text("\n")
        (root / "src" / "report" / "render.cpp").write_text("\n")
        (root / "src" / "report" / "study.cpp").write_text(
            '{"table4", "Table 4", "t", run},\n')
        (root / "data" / "paper_reference.json").write_text(json.dumps(
            {"studies": {"table4": {"metrics": {}},
                         "ghost_study": {"metrics": {}}}}))
        found = lint_schema_sync(root)
        msgs = "\n".join(str(f) for f in found)
        if "undocumented_key" not in msgs:
            failures.append("schema-sync missed an undocumented key")
        if "ghost_study" not in msgs:
            failures.append("schema-sync missed an unregistered study")
        if "cycles" in msgs or "'table4'" in msgs:
            failures.append("schema-sync flagged documented/registered "
                            "entries")
    return failures


def main(argv):
    ap = argparse.ArgumentParser(
        prog="capstan-lint", add_help=True,
        description="Project-invariant static checks (see module "
                    "docstring and docs/STATIC_ANALYSIS.md).")
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--report-json", default=None,
                    help="a produced report.json: additionally check "
                         "every tolerance-checked reference metric "
                         "was produced")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture self-test and exit")
    try:
        args = ap.parse_args(argv)
    except SystemExit as e:
        # argparse exits 2 on usage errors already; keep that contract.
        raise e

    if args.self_test:
        return self_test()

    root = Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"capstan-lint: no src/ under {root}", file=sys.stderr)
        return 2

    findings = lint_tree(root, args.report_json)
    for f in findings:
        print(f)
    if findings:
        counts = {}
        for f in findings:
            counts[f.cls] = counts.get(f.cls, 0) + 1
        summary = ", ".join(f"{c} {k}" for k, c in sorted(counts.items()))
        print(f"capstan-lint: {len(findings)} finding(s): {summary}")
        return 1
    print("capstan-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
