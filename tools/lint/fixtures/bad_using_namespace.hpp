// Fixture: using-namespace in a header leaks the whole namespace into
// every translation unit that includes it.
#pragma once

#include <vector>

using namespace std;

inline vector<int>
empty_list()
{
    return {};
}
