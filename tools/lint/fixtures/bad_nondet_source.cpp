// Fixture: std::random_device is a per-run entropy source; results
// seeded from it can never be byte-compared across machines.
#include <random>

unsigned
pickSeed()
{
    std::random_device rd;
    return rd();
}
