// Fixture: a lambda dispatched on the WorkerPool mutating a shared
// member directly. Concurrent `totals_ +=` from several workers is a
// data race, and even when TSan gets lucky the accumulation order
// varies run to run — the write must go through the worker's StepCtx
// slot and be merged in index order after the barrier.
struct BadMachine
{
    long totals_ = 0;
    WorkerPool *pool_ = nullptr;

    void step()
    {
        pool_->run(16, [this](int begin, int end, int w) {
            (void)w;
            for (int t = begin; t < end; ++t)
                totals_ += t; // Race: unsubscripted shared write.
        });
    }
};
