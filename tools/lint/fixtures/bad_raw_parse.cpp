// Fixture: raw stoi() throws std::invalid_argument on bad input
// instead of the exit-2 usage error the CLI contract promises; all
// numeric parsing must route through the helpers in
// src/driver/options.cpp.
#include <string>

int
parseWidth(const std::string &arg)
{
    return std::stoi(arg);
}
