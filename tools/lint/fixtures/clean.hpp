// Fixture: a well-formed header — #pragma once first, no namespace
// leaks, fully qualified names.
#pragma once

#include <vector>

namespace fixture {

inline std::vector<int>
empty_list()
{
    return {};
}

} // namespace fixture
