// Fixture: a header with no #pragma once. Double inclusion would
// redefine everything below.
inline int
twice(int x)
{
    return 2 * x;
}
