// Fixture: suppression mechanics — a justified allow-comment silences
// exactly the next statement's finding, so this file must lint clean.
#include <unordered_map>

bool
anyNegative(const std::unordered_map<int, int> &pending)
{
    // capstan-lint: allow(unordered-iter) -- existence scan: every
    // iteration order yields the same boolean.
    for (const auto &[key, value] : pending) {
        if (value < 0)
            return true;
    }
    return false;
}
