// Fixture: an allow-comment without a justification. Suppressions must
// say WHY the flagged line is safe, or they are findings themselves.
#include <map>

void
noop()
{
    // capstan-lint: allow(unordered-iter)
    std::map<int, int> ordered;
    (void)ordered;
}
