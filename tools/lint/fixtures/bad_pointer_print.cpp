// Fixture: streaming an address. ASLR randomizes it per run, so any
// report containing it stops being byte-identical.
#include <iostream>

void
debugDump(int value)
{
    std::cout << &value << "\n";
}
