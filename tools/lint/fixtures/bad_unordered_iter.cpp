// Fixture: iterating a std::unordered_map feeds bucket order into the
// output. capstan-lint must flag the range-for below.
#include <cstdio>
#include <unordered_map>

void
dumpCounters()
{
    std::unordered_map<int, long> counters_;
    counters_[3] = 7;
    for (const auto &[key, value] : counters_) {
        std::printf("%d=%ld\n", key, value);
    }
}
