// Fixture: idiomatic clean code — ordered containers for anything that
// reaches output, fixed-seed PRNG, validated parsing left to the
// driver's helpers.
#include <cstdio>
#include <map>
#include <random>
#include <unordered_map>

#include "clean.hpp"

void
emitSorted()
{
    // Lookups into an unordered container are fine; only iteration
    // exposes bucket order.
    std::unordered_map<int, int> cache_;
    cache_[1] = 2;
    auto it = cache_.find(1);
    if (it != cache_.end())
        it->second += 1;

    std::map<int, int> ordered;
    ordered[1] = 2;
    for (const auto &[k, v] : ordered)
        std::printf("%d=%d\n", k, v);
}

unsigned
fixedSeedDraw()
{
    std::mt19937 rng(1234);
    return static_cast<unsigned>(rng());
}
