// Fixture: a raw CSR row accessor outside src/sparse/ pins the code
// to the plain-CSR backing; consumers must read through
// sparse::MatrixView so --matrix-store compressed works everywhere.
#include <vector>

struct FakeCsr
{
    std::vector<int> ptr;
    const std::vector<int> &rowPtr() const { return ptr; }
};

int
firstRowStart(const FakeCsr &m)
{
    return m.rowPtr().front();
}
