#!/usr/bin/env python3
"""Unit tests for capstan-audit's lexer and include-graph builder.

Runs as the `audit_units` ctest (lint label). Python stdlib unittest
only; fixture trees are built in a tempdir so the tests are hermetic.
"""

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import capstan_audit  # noqa: E402
import cpplex  # noqa: E402


def kinds(tokens):
    return [(t.kind, t.text) for t in tokens]


class LexerTest(unittest.TestCase):
    def test_identifiers_numbers_puncts(self):
        toks = cpplex.lex("int x = 42 + 0x1f;")
        self.assertEqual(kinds(toks), [
            ("id", "int"), ("id", "x"), ("punct", "="),
            ("num", "42"), ("punct", "+"), ("num", "0x1f"),
            ("punct", ";")])

    def test_multichar_operators_maximal_munch(self):
        toks = cpplex.lex("a<<=b; c->d; e::f; g>>=h; i.*j;")
        ops = [t.text for t in toks if t.kind == "punct"]
        self.assertIn("<<=", ops)
        self.assertIn("->", ops)
        self.assertIn("::", ops)
        self.assertIn(">>=", ops)
        self.assertIn(".*", ops)

    def test_line_numbers(self):
        toks = cpplex.lex("a\n\nb /* multi\nline */ c\n// note\nd\n")
        lines = {t.text: t.line for t in toks}
        self.assertEqual(lines["a"], 1)
        self.assertEqual(lines["b"], 3)
        self.assertEqual(lines["c"], 4)
        self.assertEqual(lines["d"], 6)

    def test_comments_stripped(self):
        toks = cpplex.lex("x // hidden(ident)\ny /* \"quoted\" */ z")
        self.assertEqual([t.text for t in toks], ["x", "y", "z"])

    def test_string_escapes_and_char(self):
        toks = cpplex.lex(r'f("a\"b", '
                          r"'\''"
                          r");")
        strs = [t for t in toks if t.kind == "str"]
        chars = [t for t in toks if t.kind == "char"]
        self.assertEqual(len(strs), 1)
        self.assertEqual(strs[0].text, r'"a\"b"')
        self.assertEqual(len(chars), 1)

    def test_raw_string(self):
        toks = cpplex.lex('auto s = R"x(no "escape" )done)x";')
        strs = [t for t in toks if t.kind == "str"]
        self.assertEqual(len(strs), 1)
        self.assertTrue(strs[0].text.startswith('R"x('))
        self.assertTrue(strs[0].text.endswith(')x"'))

    def test_numeric_literals(self):
        toks = cpplex.lex("1e-3 1'000'000 0b1010 3.14f .5")
        self.assertTrue(all(t.kind == "num" for t in toks))
        self.assertEqual(len(toks), 5)

    def test_quoted_includes(self):
        text = ('#include "a/b.hpp"\n#include <vector>\n'
                '#include "c.hpp"\n')
        incs = cpplex.quoted_includes(cpplex.lex(text))
        self.assertEqual(incs, [("a/b.hpp", 1), ("c.hpp", 3)])

    def test_match_forward(self):
        toks = cpplex.lex("f(a, g(b), h(c))")
        self.assertEqual(cpplex.match_forward(toks, 1, "(", ")"),
                         len(toks) - 1)


class FunctionBodyTest(unittest.TestCase):
    def test_call_sites_are_not_definitions(self):
        toks = cpplex.lex(
            "void use() { for (auto k : keys()) eat(k); }\n"
            "int keys() { return 7; }\n")
        span = capstan_audit.function_body_span(toks, "keys")
        self.assertIsNotNone(span)
        body = toks[span[0]:span[1] + 1]
        self.assertIn(("id", "return"), kinds(body))
        self.assertIn(("num", "7"), kinds(body))

    def test_struct_fields(self):
        toks = cpplex.lex(
            "struct Opt {\n"
            "  std::string app = \"x\";\n"
            "  std::vector<std::pair<int, int>> pairs;\n"
            "  bool flag() const { return ok; }\n"
            "  bool ok = true;\n"
            "};\n")
        self.assertEqual(capstan_audit.struct_fields(toks, "Opt"),
                         ["app", "pairs", "ok"])

    def test_logical_strings_concatenate(self):
        toks = cpplex.lex('const char *s = "ab"\n  "cd";\n'
                          'const char *t = "ef";')
        strs = [s for s, _ in capstan_audit.logical_strings(toks)]
        self.assertEqual(strs, ["abcd", "ef"])


class IncludeGraphTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.root = Path(self.tmp.name)

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, rel, text):
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")

    def test_relative_and_include_dir_resolution(self):
        self.write("src/a/one.hpp", "#pragma once\n")
        self.write("src/a/two.hpp",
                   '#pragma once\n#include "one.hpp"\n')
        self.write("src/b/three.cpp",
                   '#include "a/two.hpp"\n#include <vector>\n'
                   '#include "no/such/file.hpp"\n')
        cache = capstan_audit.TokenCache(self.root)
        edges = capstan_audit.build_include_graph(
            self.root, capstan_audit.src_files(self.root),
            [self.root / "src"], cache)
        self.assertEqual(
            sorted((s, d) for s, d, _ in edges),
            [("src/a/two.hpp", "src/a/one.hpp"),
             ("src/b/three.cpp", "src/a/two.hpp")])

    def test_transitive_closure(self):
        edges = [("a", "b", 1), ("b", "c", 1), ("c", "a", 1),
                 ("d", "a", 1)]
        closure = capstan_audit.transitive_includes(edges)
        self.assertEqual(closure["d"], {"a", "b", "c"})
        self.assertEqual(closure["a"], {"b", "c", "a"})

    def test_layer_of(self):
        self.assertEqual(capstan_audit.layer_of("src/sim/dram.cpp"),
                         "sim")
        self.assertIsNone(capstan_audit.layer_of("src/stray.cpp"))
        self.assertIsNone(capstan_audit.layer_of("tools/x/y.cpp"))

    def test_compile_commands_include_dirs(self):
        self.write("build/compile_commands.json", """[
          {"directory": "%s/build",
           "command": "c++ -I../src -I/usr/include -c x.cpp",
           "file": "x.cpp"}
        ]""" % self.root)
        self.write("src/keep.hpp", "#pragma once\n")
        dirs = capstan_audit.include_dirs_from_build(
            self.root, self.root / "build")
        self.assertEqual(dirs, [(self.root / "src").resolve()])


if __name__ == "__main__":
    unittest.main(verbosity=2)
