#!/usr/bin/env python3
"""cpplex: a lightweight C++ lexer for capstan-audit.

capstan-lint (tools/lint/) deliberately stays line/regex-level; the
audit's whole-program analyses (include-layer DAG, cross-function
thread-escape) need something sturdier: a token stream with line
numbers, comments and whitespace gone, string/char literals opaque,
and multi-character operators as single tokens. This is that — and
nothing more. It does not preprocess, expand macros, or build an AST;
the audit's analyses are designed around what a faithful token stream
can support.

Token kinds:
    id     identifiers and keywords (C++ keywords are not special)
    num    numeric literals (including hex/float/separators)
    str    string literals, quotes included ("..." and R"raw(...)raw")
    char   character literals, quotes included
    punct  operators and punctuation; multi-char operators
           (`::`, `->`, `+=`, `<<=`, ...) are one token

Python 3.8+, standard library only.
"""

# Multi-character operators, longest first so maximal munch works.
_PUNCTS = (
    "<<=", ">>=", "->*", "...",
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", ".*",
)


class Tok:
    """One lexical token: kind, exact text, 1-based source line."""

    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"Tok({self.kind!r}, {self.text!r}, {self.line})"

    def __eq__(self, other):
        return (isinstance(other, Tok) and self.kind == other.kind
                and self.text == other.text and self.line == other.line)


def _lex_quoted(text, i, quote):
    """Span of a quoted literal starting at @p i; handles escapes."""
    n = len(text)
    j = i + 1
    while j < n:
        c = text[j]
        if c == "\\":
            j += 2
            continue
        if c == quote:
            return j + 1
        if c == "\n":  # unterminated literal: stop at end of line
            return j
        j += 1
    return n


def _lex_raw_string(text, i):
    """Span of a raw string literal R"delim( ... )delim" at @p i."""
    n = len(text)
    j = text.find("(", i + 2)
    if j < 0:
        return n
    delim = text[i + 2:j]
    end = text.find(")" + delim + '"', j + 1)
    return n if end < 0 else end + len(delim) + 2


def lex(text):
    """Tokenize @p text; returns a list of Tok."""
    tokens = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif c in " \t\r\v\f":
            i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            line += text.count("\n", i, j)
            i = j
        elif (c == "R" and i + 1 < n and text[i + 1] == '"'):
            j = _lex_raw_string(text, i)
            tokens.append(Tok("str", text[i:j], line))
            line += text.count("\n", i, j)
            i = j
        elif c == '"':
            j = _lex_quoted(text, i, '"')
            tokens.append(Tok("str", text[i:j], line))
            i = j
        elif c == "'":
            j = _lex_quoted(text, i, "'")
            tokens.append(Tok("char", text[i:j], line))
            i = j
        elif c.isalpha() or c == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Tok("id", text[i:j], line))
            i = j
        elif c.isdigit() or (c == "." and i + 1 < n
                             and text[i + 1].isdigit()):
            j = i + 1
            while j < n:
                ch = text[j]
                if ch.isalnum() or ch in "._'":
                    j += 1
                elif ch in "+-" and text[j - 1] in "eEpP":
                    j += 1  # exponent sign
                else:
                    break
            tokens.append(Tok("num", text[i:j], line))
            i = j
        else:
            for p in _PUNCTS:
                if text.startswith(p, i):
                    tokens.append(Tok("punct", p, line))
                    i += len(p)
                    break
            else:
                tokens.append(Tok("punct", c, line))
                i += 1
    return tokens


def quoted_includes(tokens):
    """All `#include "path"` directives as (path, line) pairs.

    System includes (`#include <...>`) are intentionally skipped: only
    quoted includes participate in the project include graph.
    """
    out = []
    for i in range(len(tokens) - 2):
        if (tokens[i].kind == "punct" and tokens[i].text == "#"
                and tokens[i + 1].kind == "id"
                and tokens[i + 1].text == "include"
                and tokens[i + 2].kind == "str"):
            out.append((tokens[i + 2].text.strip('"'),
                        tokens[i].line))
    return out


def match_forward(tokens, i, open_text, close_text):
    """Index of the token closing the bracket opened at @p i."""
    depth = 0
    for j in range(i, len(tokens)):
        t = tokens[j]
        if t.kind == "punct":
            if t.text == open_text:
                depth += 1
            elif t.text == close_text:
                depth -= 1
                if depth == 0:
                    return j
    return len(tokens) - 1
