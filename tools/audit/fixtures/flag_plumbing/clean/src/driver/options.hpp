#pragma once
#include <string>

struct DriverOptions {
  std::string app = "spmv";
  std::string output;
};
