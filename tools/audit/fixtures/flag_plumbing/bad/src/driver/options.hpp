#pragma once
#include <string>

struct DriverOptions {
  std::string app = "spmv";
  int ghost_knob = 0;
};
