#include "driver/options.hpp"
#include <vector>

std::vector<std::string> optionKeys() { return {"app"}; }

bool applyOption(DriverOptions &o, const std::string &key,
                 const std::string &value) {
  if (key == "app") {
    o.app = value;
    return true;
  }
  return false;
}

const char *usageText() { return "  --app NAME   application\n"; }
