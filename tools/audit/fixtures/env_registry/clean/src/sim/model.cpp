#include "common/env.hpp"

#include <cstdlib>

namespace capstan {

bool traceEnabled() {
  return std::getenv(common::env::kTrace) != nullptr;
}

}  // namespace capstan
