#pragma once

namespace capstan::common::env {

inline constexpr const char *kTrace = "CAPSTAN_TRACE";

}  // namespace capstan::common::env
