#pragma once

namespace capstan::common::env {

// Never read anywhere: a stale kill switch.
inline constexpr const char *kGhost = "CAPSTAN_GHOST";

}  // namespace capstan::common::env
