#include <cstdlib>

bool secretEnabled() {
  return std::getenv("CAPSTAN_SECRET") != nullptr;
}
