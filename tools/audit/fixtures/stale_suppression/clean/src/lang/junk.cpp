// stale-suppression clean fixture: both allow comments below absorb a
// live finding, so neither is stale.
#include <cstdlib>

namespace common {
struct WorkerPool {
  template <typename F>
  void run(int n, F f);
};
}  // namespace common

class StaleClean {
 public:
  void runAll();

 private:
  common::WorkerPool *pool_ = nullptr;
  long total_ = 0;
};

void StaleClean::runAll() {
  // capstan-lint: allow(nondet-source) -- fixture: the seed is fixed
  srand(42);
  pool_->run(2, [this](int w) {
    // capstan-audit: allow(thread-escape) -- fixture: pool size is one here
    total_ += w;
  });
}
