// stale-suppression bad fixture: both allow comments below suppress
// nothing — the hazards they describe are gone.

// capstan-lint: allow(nondet-source) -- claims a rand() call that was removed
int answer() { return 42; }

// capstan-audit: allow(thread-escape) -- claims a worker dispatch that was removed
int other() { return 7; }
