// thread-escape clean fixture: workers only touch their own
// subscripted slot and purely local state.
#include <vector>

namespace common {
struct WorkerPool {
  template <typename F>
  void run(int n, F f);
};
}  // namespace common

class Accumulator {
 public:
  void runAll();

 private:
  common::WorkerPool *pool_ = nullptr;
  std::vector<long> slots_;
};

void Accumulator::runAll() {
  pool_->run(4, [this](int w) {
    long x = 0;
    x += w;
    slots_[w] += x;
  });
}
