// thread-escape bad fixture: the worker lambda writes a
// reference-captured local, and calls a member function that writes
// unsubscripted shared members two hops away.
#include <vector>

namespace common {
struct WorkerPool {
  template <typename F>
  void run(int n, F f);
};
}  // namespace common

class Accumulator {
 public:
  void runAll();

 private:
  void addSlow(int v);

  common::WorkerPool *pool_ = nullptr;
  long total_ = 0;
  std::vector<int> vals_;
};

void Accumulator::addSlow(int v) {
  total_ += v;
  vals_.push_back(v);
}

void Accumulator::runAll() {
  int local = 0;
  pool_->run(4, [&](int w) {
    local += w;
    addSlow(w);
  });
}
