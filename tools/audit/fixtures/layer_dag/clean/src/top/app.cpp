#include "base/core.hpp"
#include "side/util.hpp"
int app() { return core() + util(); }
