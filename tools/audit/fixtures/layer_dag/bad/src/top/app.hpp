#pragma once
#include "side/util.hpp"
inline int app() { return util() + 1; }
