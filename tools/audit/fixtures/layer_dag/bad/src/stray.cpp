int stray() { return 0; }
