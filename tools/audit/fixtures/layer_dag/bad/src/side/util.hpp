#pragma once
#include "base/core.hpp"
inline int util() { return core() + 1; }
