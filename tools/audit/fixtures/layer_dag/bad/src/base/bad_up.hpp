#pragma once
#include "top/app.hpp"
inline int badUp() { return app(); }
