#!/usr/bin/env python3
"""capstan-audit: cross-TU architectural analysis over src/.

capstan-lint (tools/lint/) checks line-level invariants one file at a
time. This tool checks the properties that only exist *between* files:
the include-layer DAG, the option-plumbing contract, the env-var kill
switch registry, and worker-lambda escape paths that cross function
boundaries. It is python3-stdlib only, driven by the build's
compile_commands.json (for TU include paths) and a real lightweight
C++ lexer (tools/audit/cpplex.py) — not regexes over raw text.

Audit classes
-------------
layer-dag        Every `#include` between src/ layer directories must
                 conform to the declared DAG in tools/audit/layers.json
                 (an allowlist of dependencies per layer). An include
                 of a *higher* layer is an `upward` finding; one of an
                 undeclared lower/sibling layer is `undeclared`. The
                 layer diagram in docs/ARCHITECTURE.md (between the
                 capstan-audit:layers markers) must match the map;
                 --write-diagram regenerates it. --dot FILE emits the
                 full file-level include graph as Graphviz.
flag-plumbing    Every DriverOptions field (src/driver/options.hpp)
                 must be declared in tools/audit/plumbing.json as
                 either a sweep axis (then: present in optionKeys(),
                 handled in applyOption(), a sweep CSV column, and
                 documented in the usage text + README.md +
                 docs/OUTPUT_SCHEMA.md) or an explicit never-serialized
                 denylist entry with a justification (then: absent
                 from optionKeys(), documented in usage + README).
                 Fields that flow into RunKnobs declare `knob`; the
                 audit checks the knob exists and is assigned.
env-registry     Every getenv() in src/ must name its variable through
                 a constant in src/common/env.hpp (no raw string
                 literals at call sites), every registry constant must
                 be read somewhere, and every variable documented in
                 README.md or docs/.
thread-escape    The cross-function deepening of capstan-lint's
                 worker-shared-state: inside a lambda dispatched on a
                 common::WorkerPool, (a) writes to reference-captured
                 locals, (b) unsubscripted writes to underscore members
                 — including through member functions the lambda calls,
                 transitively — and (c) non-const method calls on
                 unsubscripted member objects (constness resolved from
                 the class definitions across src/; std-container
                 mutating-method names as fallback).
stale-suppression
                 A `capstan-lint: allow(...)` or `capstan-audit:
                 allow(...)` comment that no longer suppresses a live
                 finding is itself a finding (suppression aging): the
                 justification now documents a hazard that does not
                 exist, and hides one that may appear later. Stale
                 findings cannot themselves be suppressed.

Suppressing a finding
---------------------
On the flagged line or an immediately preceding comment line:

    // capstan-audit: allow(<class>) -- <why this one is safe>

Same contract as capstan-lint: the justification is mandatory, a
suppression covers only the comment block and the first code line
after it, and a suppression that stops matching a live finding becomes
a stale-suppression finding.

Exit codes: 0 clean, 1 findings, 2 usage error (the repo's CLI
contract). Python 3.8+, standard library only.
"""

import argparse
import json
import re
import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE))
sys.path.insert(0, str(_HERE.parent / "lint"))

import capstan_lint  # noqa: E402
import cpplex  # noqa: E402

Finding = capstan_lint.Finding

AUDIT_CLASSES = (
    "layer-dag",
    "flag-plumbing",
    "env-registry",
    "thread-escape",
    "stale-suppression",
)

AUDIT_ALLOW_RE = re.compile(
    r"capstan-audit:\s*allow\(([a-z-]+)\)\s*(?:--\s*(.*))?")

LAYERS_JSON = Path("tools") / "audit" / "layers.json"
PLUMBING_JSON = Path("tools") / "audit" / "plumbing.json"
ENV_REGISTRY = Path("src") / "common" / "env.hpp"
ARCHITECTURE_MD = Path("docs") / "ARCHITECTURE.md"

DIAGRAM_BEGIN = "<!-- capstan-audit:layers:begin -->"
DIAGRAM_END = "<!-- capstan-audit:layers:end -->"

# Mutating std-container methods: the fallback verdict when a member
# object's type cannot be resolved to a class defined in src/.
MUTATING_METHODS = frozenset({
    "push_back", "emplace_back", "push_front", "emplace_front",
    "emplace", "push", "pop", "pop_back", "pop_front", "insert",
    "erase", "clear", "resize", "assign", "swap", "reset", "reserve",
})

WRITE_OPS = frozenset({
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "<<=", ">>=", "++", "--",
})


# ---------------------------------------------------------------------
# Shared infrastructure
# ---------------------------------------------------------------------

class TokenCache:
    """Lexed token streams by repo-relative path, lexed once."""

    def __init__(self, root):
        self.root = Path(root)
        self._tokens = {}
        self._text = {}

    def text(self, rel):
        if rel not in self._text:
            self._text[rel] = (self.root / rel).read_text(
                encoding="utf-8")
        return self._text[rel]

    def tokens(self, rel):
        if rel not in self._tokens:
            self._tokens[rel] = cpplex.lex(self.text(rel))
        return self._tokens[rel]


class Suppressions:
    """capstan-audit allow-comments: coverage, usage, hygiene."""

    def __init__(self):
        self.by_file = {}    # rel -> {line: {cls: allow_line}}
        self.comments = []   # (rel, allow_line, cls)
        self.malformed = []  # Finding
        self.used = set()    # (rel, allow_line, cls)

    def load(self, rel, text):
        lines = text.splitlines()
        covered = {}
        for idx, line in enumerate(lines, start=1):
            m = AUDIT_ALLOW_RE.search(line)
            if not m:
                continue
            cls, why = m.group(1), (m.group(2) or "").strip()
            if cls not in AUDIT_CLASSES:
                self.malformed.append(Finding(
                    rel, idx, "stale-suppression",
                    f"allow({cls}) names an unknown audit class"))
                continue
            if cls == "stale-suppression":
                self.malformed.append(Finding(
                    rel, idx, "stale-suppression",
                    "stale-suppression findings cannot be "
                    "suppressed"))
                continue
            if not why:
                self.malformed.append(Finding(
                    rel, idx, "stale-suppression",
                    f"allow({cls}) without a justification after "
                    f"'--'"))
                continue
            self.comments.append((rel, idx, cls))
            span = [idx]
            j = idx  # 0-based index of the next line
            while j < len(lines):
                stripped = lines[j].strip()
                span.append(j + 1)
                if stripped and not stripped.startswith("//"):
                    break
                j += 1
            for ln in span:
                covered.setdefault(ln, {}).setdefault(cls, idx)
        self.by_file[rel] = covered

    def check(self, rel, line, cls):
        """True when (rel, line) is covered for @p cls; records use."""
        allow_line = self.by_file.get(rel, {}).get(line, {}).get(cls)
        if allow_line is None:
            return False
        self.used.add((rel, allow_line, cls))
        return True


def add_finding(findings, supp, rel, line, cls, msg):
    if supp.check(rel, line, cls):
        return
    findings.append(Finding(rel, line, cls, msg))


def rel_str(path, root):
    return str(Path(path).resolve().relative_to(Path(root).resolve()))


def src_files(root):
    """All C++ files under src/, repo-relative, sorted."""
    out = []
    for path in sorted((Path(root) / "src").rglob("*")):
        if path.suffix in (".hpp", ".cpp", ".h"):
            out.append(rel_str(path, root))
    return out


def corpus_files(root):
    """Everything the suppression scan covers: src/ + tests/tools
    C++ sources (fixture corpora excluded, as in capstan-lint)."""
    out = src_files(root)
    for path in capstan_lint.iter_aux_source_files(Path(root)):
        out.append(rel_str(path, root))
    return out


def include_dirs_from_build(root, build_dir):
    """-I directories from compile_commands.json, repo-local only.

    Falls back to [root/src] when the build directory or the database
    is absent — the audit must be runnable on a fresh checkout.
    """
    root = Path(root).resolve()
    dirs = []
    cc = Path(build_dir) / "compile_commands.json" if build_dir else None
    if cc and cc.is_file():
        try:
            db = json.loads(cc.read_text(encoding="utf-8"))
        except ValueError:
            db = []
        for entry in db:
            args = entry.get("arguments")
            if not args:
                args = entry.get("command", "").split()
            for i, a in enumerate(args):
                path = None
                if a.startswith("-I"):
                    path = a[2:] or (args[i + 1]
                                     if i + 1 < len(args) else None)
                if not path:
                    continue
                p = Path(path)
                if not p.is_absolute():
                    p = Path(entry.get("directory", ".")) / p
                p = p.resolve()
                if root in p.parents and p.is_dir() and p not in dirs:
                    dirs.append(p)
    if not dirs:
        dirs = [root / "src"]
    return dirs


def logical_strings(tokens):
    """String literals with C++ adjacent-literal concatenation."""
    out = []
    cur = None
    for t in tokens:
        if t.kind == "str":
            piece = t.text
            if piece.startswith('R"'):
                piece = piece[piece.find("(") + 1:piece.rfind(")")]
            else:
                piece = piece.strip('"')
            if cur is None:
                cur = [piece, t.line]
            else:
                cur[0] += piece
        elif cur is not None:
            out.append((cur[0], cur[1]))
            cur = None
    if cur is not None:
        out.append((cur[0], cur[1]))
    return out


def function_body_span(tokens, func_name):
    """(start, end) token indices of the `{...}` body of the function
    definition `func_name(...) [const ...] { ... }`.

    Call sites (`x = func_name()`, `for (... : func_name())`) never
    match: the token right after the closing paren must open the body
    (allowing cv/ref qualifiers), which a call expression never does.
    """
    n = len(tokens)
    for i in range(n - 1):
        if not (tokens[i].kind == "id" and tokens[i].text == func_name
                and tokens[i + 1].kind == "punct"
                and tokens[i + 1].text == "("):
            continue
        close = cpplex.match_forward(tokens, i + 1, "(", ")")
        j = close + 1
        while j < n and tokens[j].kind == "id" and tokens[j].text in (
                "const", "noexcept", "override", "final"):
            j += 1
        if j < n and tokens[j].kind == "punct" \
                and tokens[j].text == "{":
            return (j, cpplex.match_forward(tokens, j, "{", "}"))
    return None


def function_strings(tokens, func_name):
    span = function_body_span(tokens, func_name)
    if span is None:
        return None
    return {s for s, _ in logical_strings(tokens[span[0]:span[1] + 1])}


# ---------------------------------------------------------------------
# layer-dag
# ---------------------------------------------------------------------

def load_layers(root):
    path = Path(root) / LAYERS_JSON
    data = json.loads(path.read_text(encoding="utf-8"))
    order = [layer["name"] for layer in data["layers"]]
    deps = {layer["name"]: set(layer["deps"])
            for layer in data["layers"]}
    return order, deps, data


def build_include_graph(root, files, include_dirs, cache):
    """Direct-include edges as (src_rel, dst_rel, line) triples.

    Quoted includes resolve like the compiler's: the including file's
    directory first, then the -I directories. Unresolvable quoted
    includes (external headers) are skipped — the graph covers the
    repository only.
    """
    root = Path(root).resolve()
    edges = []
    for rel in files:
        here = (root / rel).parent
        for inc, line in cpplex.quoted_includes(cache.tokens(rel)):
            resolved = None
            for base in [here] + list(include_dirs):
                cand = Path(base) / inc
                if cand.is_file():
                    resolved = cand.resolve()
                    break
            if resolved is None:
                continue
            try:
                dst = str(resolved.relative_to(root))
            except ValueError:
                continue
            edges.append((rel, dst, line))
    return edges


def transitive_includes(edges):
    """rel -> set of all files reachable through includes."""
    direct = {}
    for s, d, _ in edges:
        direct.setdefault(s, set()).add(d)
    closure = {}

    def visit(node, stack):
        if node in closure:
            return closure[node]
        if node in stack:
            return set()  # include cycle; reported elsewhere
        stack.add(node)
        out = set()
        for d in direct.get(node, ()):
            out.add(d)
            out |= visit(d, stack)
        stack.discard(node)
        closure[node] = out
        return out

    for node in list(direct):
        visit(node, set())
    return closure


def layer_of(rel):
    parts = Path(rel).parts
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def render_diagram(data):
    """The ARCHITECTURE.md layer block generated from layers.json."""
    lines = [
        "```text",
        "layer       may include (tools/audit/layers.json)",
        "-----       ------------------------------------",
    ]
    for layer in reversed(data["layers"]):
        deps = ", ".join(layer["deps"]) if layer["deps"] else "(nothing)"
        lines.append(f"{layer['name']:<11} {deps}")
    lines.append("```")
    return "\n".join(lines)


def render_dot(edges, order):
    """The file-level include graph, clustered by layer."""
    by_layer = {}
    nodes = set()
    for s, d, _ in edges:
        nodes.add(s)
        nodes.add(d)
    for n in sorted(nodes):
        by_layer.setdefault(layer_of(n) or "(other)", []).append(n)
    out = [
        "// Generated by tools/audit/capstan_audit.py --dot.",
        "// One node per src/ file, clustered by layer; edges are",
        "// direct quoted #includes.",
        "digraph capstan_includes {",
        "  rankdir=BT;",
        "  node [shape=box, fontsize=9];",
    ]
    cluster_order = [n for n in order if n in by_layer]
    cluster_order += sorted(set(by_layer) - set(cluster_order))
    for layer in cluster_order:
        out.append(f'  subgraph "cluster_{layer}" {{')
        out.append(f'    label="{layer}";')
        for n in by_layer[layer]:
            out.append(f'    "{n}";')
        out.append("  }")
    for s, d in sorted({(s, d) for s, d, _ in edges}):
        out.append(f'  "{s}" -> "{d}";')
    out.append("}")
    return "\n".join(out) + "\n"


def diagram_sync_findings(root, data, supp, rewrite=False):
    findings = []
    arch = Path(root) / ARCHITECTURE_MD
    if not arch.is_file():
        return findings  # fixture trees have no docs/
    text = arch.read_text(encoding="utf-8")
    block = render_diagram(data)
    want = f"{DIAGRAM_BEGIN}\n{block}\n{DIAGRAM_END}"
    begin = text.find(DIAGRAM_BEGIN)
    end = text.find(DIAGRAM_END)
    rel = str(ARCHITECTURE_MD)
    if begin < 0 or end < 0:
        add_finding(findings, supp, rel, 1, "layer-dag",
                    f"missing the generated layer block "
                    f"({DIAGRAM_BEGIN} ... {DIAGRAM_END}); run "
                    f"capstan_audit.py --write-diagram")
        return findings
    have = text[begin:end + len(DIAGRAM_END)]
    if have != want:
        line = text.count("\n", 0, begin) + 1
        if rewrite:
            arch.write_text(text[:begin] + want
                            + text[end + len(DIAGRAM_END):],
                            encoding="utf-8")
            print(f"capstan-audit: rewrote layer diagram in {rel}")
        else:
            add_finding(findings, supp, rel, line, "layer-dag",
                        "layer diagram is out of sync with "
                        "tools/audit/layers.json; run "
                        "capstan_audit.py --write-diagram")
    return findings


def audit_layer_dag(root, supp, cache=None, build_dir=None,
                    dot_path=None, write_diagram=False):
    root = Path(root)
    cache = cache or TokenCache(root)
    findings = []
    try:
        order, deps, data = load_layers(root)
    except (OSError, ValueError, KeyError) as e:
        return [Finding(str(LAYERS_JSON), 1, "layer-dag",
                        f"cannot load layer map: {e}")], []
    rank = {name: i for i, name in enumerate(order)}
    files = src_files(root)
    include_dirs = include_dirs_from_build(root, build_dir)
    edges = build_include_graph(root, files, include_dirs, cache)

    for rel in files:
        if layer_of(rel) is None or layer_of(rel) not in rank:
            add_finding(findings, supp, rel, 1, "layer-dag",
                        f"file is not inside a declared layer "
                        f"directory (layers: {', '.join(order)})")

    for s, d, line in edges:
        ls, ld = layer_of(s), layer_of(d)
        if ls is None or ld is None:
            continue
        if ls not in rank or ld not in rank:
            continue  # unmapped; flagged above
        if ls == ld or ld in deps[ls]:
            continue
        direction = ("upward" if rank.get(ld, 0) > rank.get(ls, 0)
                     else "undeclared cross-layer")
        allowed = ", ".join(sorted(deps[ls] | {ls})) or ls
        add_finding(findings, supp, s, line, "layer-dag",
                    f"{direction} #include of '{d}' (layer '{ld}'); "
                    f"layer '{ls}' may only include: {allowed}")

    findings += diagram_sync_findings(root, data, supp,
                                      rewrite=write_diagram)

    if dot_path:
        Path(dot_path).write_text(render_dot(edges, order),
                                  encoding="utf-8")
    return findings, edges


# ---------------------------------------------------------------------
# flag-plumbing
# ---------------------------------------------------------------------

def struct_fields(tokens, struct_name):
    """Data-member names of `struct struct_name { ... }`."""
    for i in range(len(tokens) - 2):
        if (tokens[i].kind == "id"
                and tokens[i].text in ("struct", "class")
                and tokens[i + 1].kind == "id"
                and tokens[i + 1].text == struct_name):
            j = i + 2
            while j < len(tokens) and not (
                    tokens[j].kind == "punct"
                    and tokens[j].text in ("{", ";")):
                j += 1
            if j >= len(tokens) or tokens[j].text == ";":
                continue  # forward declaration
            end = cpplex.match_forward(tokens, j, "{", "}")
            return _body_fields(tokens, j + 1, end)
    return None


def _body_fields(tokens, start, end):
    """Field names among the depth-0 statements of a class body."""
    fields = []
    stmt = []
    depth_paren = depth_brace = 0
    saw_brace = False
    i = start
    while i < end:
        t = tokens[i]
        if t.kind == "punct":
            if t.text == "(":
                depth_paren += 1
            elif t.text == ")":
                depth_paren -= 1
            elif t.text == "{":
                depth_brace += 1
                saw_brace = True
            elif t.text == "}":
                depth_brace -= 1
                if saw_brace and depth_brace == 0:
                    # A method body just closed: drop the statement.
                    stmt, saw_brace = [], False
                    i += 1
                    continue
            elif (t.text == ";" and depth_paren == 0
                  and depth_brace == 0):
                name = _field_name(stmt)
                if name:
                    fields.append(name)
                stmt, saw_brace = [], False
                i += 1
                continue
        if depth_brace == 0:
            stmt.append(t)
        i += 1
    return fields


def _field_name(stmt):
    """Field name of one member statement, or None for methods etc."""
    if not stmt:
        return None
    texts = [t.text for t in stmt]
    if texts[0] in ("using", "typedef", "static", "friend", "enum",
                    "public", "private", "protected"):
        # Access labels only prefix a statement when it is glued to
        # one (`public: int x;`); strip and retry.
        if texts[0] in ("public", "private", "protected") \
                and len(stmt) > 2 and texts[1] == ":":
            return _field_name(stmt[2:])
        return None
    if any(t.kind == "punct" and t.text == "(" for t in stmt):
        return None  # method (or function-typed member; none here)
    last_id = None
    for t in stmt:
        if t.kind == "punct" and t.text == "=":
            break
        if t.kind == "id":
            last_id = t.text
    return last_id


def audit_flag_plumbing(root, supp, cache=None):
    root = Path(root)
    cache = cache or TokenCache(root)
    findings = []
    opts_hpp = Path("src") / "driver" / "options.hpp"
    opts_cpp = Path("src") / "driver" / "options.cpp"
    sweep_cpp = Path("src") / "driver" / "sweep.cpp"
    runner_hpp = Path("src") / "driver" / "runner.hpp"
    runner_cpp = Path("src") / "driver" / "runner.cpp"

    for req in (opts_hpp, opts_cpp, PLUMBING_JSON):
        if not (root / req).is_file():
            return [Finding(str(req), 1, "flag-plumbing",
                            "required input is missing")]
    try:
        plumbing = json.loads(
            (root / PLUMBING_JSON).read_text(encoding="utf-8"))
        declared = plumbing["fields"]
    except (ValueError, KeyError) as e:
        return [Finding(str(PLUMBING_JSON), 1, "flag-plumbing",
                        f"cannot load plumbing contract: {e}")]

    fields = struct_fields(cache.tokens(str(opts_hpp)),
                           "DriverOptions")
    if fields is None:
        return [Finding(str(opts_hpp), 1, "flag-plumbing",
                        "struct DriverOptions not found")]

    cpp_tokens = cache.tokens(str(opts_cpp))
    option_keys = function_strings(cpp_tokens, "optionKeys") or set()
    apply_strings = function_strings(cpp_tokens, "applyOption")
    all_cpp_strings = {s for s, _ in logical_strings(cpp_tokens)}
    readme = (root / "README.md").read_text(encoding="utf-8") \
        if (root / "README.md").is_file() else ""
    schema_doc = root / Path("docs") / "OUTPUT_SCHEMA.md"
    schema_tokens = capstan_lint.documented_tokens(
        schema_doc.read_text(encoding="utf-8")) \
        if schema_doc.is_file() else set()

    csv_columns = set()
    if (root / sweep_cpp).is_file():
        for s, _ in logical_strings(cache.tokens(str(sweep_cpp))):
            if "app,dataset" in s:
                csv_columns |= set(s.replace("\n", ",").split(","))

    knob_fields = None
    if (root / runner_hpp).is_file():
        knob_fields = struct_fields(cache.tokens(str(runner_hpp)),
                                    "RunKnobs")
    runner_text = capstan_lint.strip_comments(
        cache.text(str(runner_cpp))) \
        if (root / runner_cpp).is_file() else ""

    rel = str(opts_hpp)

    def usage_documents(flag):
        return any(flag in s for s in all_cpp_strings)

    for field in fields:
        spec = declared.get(field)
        if spec is None:
            add_finding(findings, supp, rel, 1, "flag-plumbing",
                        f"DriverOptions.{field} is not declared in "
                        f"{PLUMBING_JSON} (sweep axis or "
                        f"never-serialized denylist?)")
            continue
        axis = spec.get("axis")
        if axis:
            flag = "--" + axis
            if axis not in option_keys:
                add_finding(findings, supp, rel, 1, "flag-plumbing",
                            f"axis field '{field}': key '{axis}' is "
                            f"missing from optionKeys() in {opts_cpp}")
            if apply_strings is not None and axis not in apply_strings:
                add_finding(findings, supp, rel, 1, "flag-plumbing",
                            f"axis field '{field}': key '{axis}' is "
                            f"not handled in applyOption()")
            csv_col = axis.replace("-", "_")
            if csv_columns and csv_col not in csv_columns:
                add_finding(findings, supp, rel, 1, "flag-plumbing",
                            f"axis field '{field}': no '{csv_col}' "
                            f"column in the sweep CSV header "
                            f"({sweep_cpp})")
            if axis not in schema_tokens \
                    and csv_col not in schema_tokens:
                add_finding(findings, supp, rel, 1, "flag-plumbing",
                            f"axis field '{field}': key '{axis}' is "
                            f"not documented in docs/OUTPUT_SCHEMA.md")
        else:
            flag = spec.get("flag", "")
            if not flag:
                add_finding(findings, supp, rel, 1, "flag-plumbing",
                            f"denylist field '{field}' declares no "
                            f"flag in {PLUMBING_JSON}")
            if not spec.get("never_serialized", "").strip():
                add_finding(findings, supp, rel, 1, "flag-plumbing",
                            f"denylist field '{field}' has no "
                            f"never_serialized justification")
            key = flag.lstrip("-")
            if key and key in option_keys:
                add_finding(findings, supp, rel, 1, "flag-plumbing",
                            f"never-serialized field '{field}' "
                            f"('{key}') appears in optionKeys(): it "
                            f"would leak into sweep identities")
        if flag:
            if not usage_documents(flag):
                add_finding(findings, supp, rel, 1, "flag-plumbing",
                            f"field '{field}': flag '{flag}' is not "
                            f"in the {opts_cpp} usage/parse strings")
            if readme and flag not in readme \
                    and f"`{flag.lstrip('-')}`" not in readme:
                add_finding(findings, supp, rel, 1, "flag-plumbing",
                            f"field '{field}': flag '{flag}' is not "
                            f"documented in README.md")
        knob = spec.get("knob")
        if knob:
            if knob_fields is not None and knob not in knob_fields:
                add_finding(findings, supp, rel, 1, "flag-plumbing",
                            f"field '{field}': declared knob "
                            f"'{knob}' is not a RunKnobs member "
                            f"({runner_hpp})")
            if runner_text and f"knobs.{knob}" not in runner_text:
                add_finding(findings, supp, rel, 1, "flag-plumbing",
                            f"field '{field}': knob '{knob}' is "
                            f"never assigned (knobs.{knob}) in "
                            f"{runner_cpp}")

    for field in declared:
        if field not in fields:
            add_finding(findings, supp, str(PLUMBING_JSON), 1,
                        "flag-plumbing",
                        f"plumbing entry '{field}' has no matching "
                        f"DriverOptions field (stale contract entry)")
    return findings


# ---------------------------------------------------------------------
# env-registry
# ---------------------------------------------------------------------

def parse_env_registry(tokens):
    """{constant name: env var} from src/common/env.hpp."""
    entries = {}
    for i in range(len(tokens) - 2):
        if (tokens[i].kind == "id" and tokens[i].text.startswith("k")
                and tokens[i + 1].kind == "punct"
                and tokens[i + 1].text == "="
                and tokens[i + 2].kind == "str"):
            entries[tokens[i].text] = tokens[i + 2].text.strip('"')
    return entries


def audit_env_registry(root, supp, cache=None):
    root = Path(root)
    cache = cache or TokenCache(root)
    findings = []
    reg_rel = str(ENV_REGISTRY)
    if not (root / ENV_REGISTRY).is_file():
        return [Finding(reg_rel, 1, "env-registry",
                        "env registry header is missing")]
    registry = parse_env_registry(cache.tokens(reg_rel))

    docs_blob = ""
    if (root / "README.md").is_file():
        docs_blob += (root / "README.md").read_text(encoding="utf-8")
    docs_dir = root / "docs"
    if docs_dir.is_dir():
        for doc in sorted(docs_dir.glob("*.md")):
            docs_blob += doc.read_text(encoding="utf-8")

    used_constants = set()
    for rel in src_files(root):
        tokens = cache.tokens(rel)
        if rel != reg_rel:
            for t in tokens:
                if t.kind == "id" and t.text in registry:
                    used_constants.add(t.text)
        for i, t in enumerate(tokens):
            if not (t.kind == "id" and t.text == "getenv"):
                continue
            if i + 1 >= len(tokens) or tokens[i + 1].text != "(":
                continue
            close = cpplex.match_forward(tokens, i + 1, "(", ")")
            args = tokens[i + 2:close]
            str_args = [a for a in args if a.kind == "str"]
            if str_args:
                var = str_args[0].text.strip('"')
                add_finding(findings, supp, rel, t.line,
                            "env-registry",
                            f"getenv(\"{var}\") uses a raw string "
                            f"literal; declare the switch in "
                            f"{reg_rel} and reference the constant")
                continue
            ids = [a.text for a in args if a.kind == "id"]
            name = ids[-1] if ids else None
            if name is None or name not in registry:
                add_finding(findings, supp, rel, t.line,
                            "env-registry",
                            f"getenv({name or '<expr>'}) does not "
                            f"reference a constant declared in "
                            f"{reg_rel}")

    for const, var in sorted(registry.items()):
        if const not in used_constants:
            add_finding(findings, supp, reg_rel, 1, "env-registry",
                        f"registry entry {const} (\"{var}\") is "
                        f"never read in src/ (stale kill switch)")
        if var not in docs_blob:
            add_finding(findings, supp, reg_rel, 1, "env-registry",
                        f"env var {var} is not documented in "
                        f"README.md or docs/")
    return findings


# ---------------------------------------------------------------------
# thread-escape
# ---------------------------------------------------------------------

POOL_ID_RE = re.compile(r"[A-Za-z_]*pool_?$")


def parse_class_defs(tokens, rel, classes):
    """Collect class definitions: methods (constness, inline body
    spans) and member-object fields (name -> last type identifier)."""
    i = 0
    n = len(tokens)
    while i < n - 2:
        t = tokens[i]
        if (t.kind == "id" and t.text in ("class", "struct")
                and tokens[i + 1].kind == "id"
                and not (i > 0 and tokens[i - 1].kind == "id"
                         and tokens[i - 1].text == "enum")):
            name = tokens[i + 1].text
            j = i + 2
            while j < n and not (tokens[j].kind == "punct"
                                 and tokens[j].text in ("{", ";")):
                j += 1
            if j >= n or tokens[j].text == ";":
                i += 1
                continue
            end = cpplex.match_forward(tokens, j, "{", "}")
            entry = classes.setdefault(
                name, {"methods": {}, "fields": {}})
            _scan_class_body(tokens, j + 1, end, rel, entry)
            i = end + 1
        else:
            i += 1


def _scan_class_body(tokens, start, end, rel, entry):
    i = start
    stmt_start = start
    depth = 0
    while i < end:
        t = tokens[i]
        if t.kind == "punct" and t.text == "(" and depth == 0:
            # Possible method: identifier directly before the paren.
            m = tokens[i - 1] if i > 0 else None
            close = cpplex.match_forward(tokens, i, "(", ")")
            j = close + 1
            is_const = False
            body = None
            while j < end:
                tj = tokens[j]
                if tj.kind == "id" and tj.text == "const":
                    is_const = True
                elif tj.kind == "punct" and tj.text == "{":
                    body_end = cpplex.match_forward(tokens, j,
                                                    "{", "}")
                    body = (rel, j, body_end)
                    j = body_end
                    break
                elif tj.kind == "punct" and tj.text in (";", ":"):
                    break  # declaration (or ctor initializer list)
                j += 1
            if m is not None and m.kind == "id" and m.text not in (
                    "if", "for", "while", "switch", "return"):
                info = entry["methods"].setdefault(
                    m.text, {"const": is_const, "body": None})
                info["const"] = info["const"] or is_const
                if body is not None:
                    info["body"] = body
            i = j + 1
            stmt_start = i
            continue
        if t.kind == "punct" and t.text == "{":
            i = cpplex.match_forward(tokens, i, "{", "}") + 1
            stmt_start = i
            continue
        if t.kind == "punct" and t.text == ";":
            stmt = tokens[stmt_start:i]
            name = _field_name(stmt)
            if name:
                type_id = None
                for s in stmt:
                    if s.kind == "id" and s.text != name:
                        type_id = s.text
                    if s.kind == "id" and s.text == name:
                        break
                entry["fields"][name] = type_id
            i += 1
            stmt_start = i
            continue
        i += 1


def method_definitions(tokens, rel, classes):
    """Out-of-class `Class::method(...) { ... }` definitions; also
    returns (start, end, class) spans for enclosing-class lookup."""
    spans = []
    i = 0
    n = len(tokens)
    while i < n - 3:
        if (tokens[i].kind == "id"
                and tokens[i + 1].kind == "punct"
                and tokens[i + 1].text == "::"
                and tokens[i + 2].kind == "id"
                and i + 3 < n
                and tokens[i + 3].kind == "punct"
                and tokens[i + 3].text == "("):
            cls, method = tokens[i].text, tokens[i + 2].text
            close = cpplex.match_forward(tokens, i + 3, "(", ")")
            j = close + 1
            is_const = False
            paren = 0
            while j < n:
                tj = tokens[j]
                if tj.kind == "punct" and tj.text == "(":
                    paren += 1
                elif tj.kind == "punct" and tj.text == ")":
                    paren -= 1
                elif paren == 0 and tj.kind == "id" \
                        and tj.text == "const":
                    is_const = True
                elif paren == 0 and tj.kind == "punct" \
                        and tj.text == "{":
                    end = cpplex.match_forward(tokens, j, "{", "}")
                    entry = classes.setdefault(
                        cls, {"methods": {}, "fields": {}})
                    info = entry["methods"].setdefault(
                        method, {"const": is_const, "body": None})
                    info["const"] = info["const"] or is_const
                    info["body"] = (rel, j, end)
                    spans.append((j, end, cls))
                    j = end
                    break
                elif paren == 0 and tj.kind == "punct" \
                        and tj.text == ";":
                    break
                elif paren < 0:
                    break  # qualified call inside an expression
                j += 1
            i = close + 1
        else:
            i += 1
    return spans


def _capture_info(tokens, cap_start, cap_end):
    ref_default = False
    ref_captures = set()
    group = []
    for i in range(cap_start + 1, cap_end):
        t = tokens[i]
        if t.kind == "punct" and t.text == ",":
            _apply_capture_group(group, ref_captures)
            ref_default |= (len(group) == 1
                            and group[0].text == "&")
            group = []
        else:
            group.append(t)
    _apply_capture_group(group, ref_captures)
    ref_default |= (len(group) == 1 and group[0].text == "&")
    return ref_default, ref_captures


def _apply_capture_group(group, ref_captures):
    if len(group) >= 2 and group[0].kind == "punct" \
            and group[0].text == "&" and group[1].kind == "id":
        ref_captures.add(group[1].text)


class EscapeContext:
    def __init__(self, cache, classes, supp, findings):
        self.cache = cache
        self.classes = classes
        self.supp = supp
        self.findings = findings


def _analyze_span(ctx, rel, start, end, class_name, chain,
                  ref_default, ref_captures, visited, depth,
                  params=None):
    tokens = ctx.cache.tokens(rel)
    declared = set(params or ())
    via = "" if not chain else \
        " (reachable via " + " -> ".join(chain) + "())"
    i = start
    while i <= end:
        t = tokens[i]
        nxt = tokens[i + 1] if i + 1 < len(tokens) else None
        prv = tokens[i - 1] if i > 0 else None
        if t.kind == "punct" and t.text in ("++", "--") \
                and nxt is not None and nxt.kind == "id" \
                and nxt.text.endswith("_"):
            after = tokens[i + 2] if i + 2 < len(tokens) else None
            if not (after and after.kind == "punct"
                    and after.text == "["):
                add_finding(ctx.findings, ctx.supp, rel, t.line,
                            "thread-escape",
                            f"worker lambda writes shared member "
                            f"'{nxt.text}' without a subscript"
                            f"{via}")
                i += 2
                continue
        if t.kind != "id":
            i += 1
            continue
        prev_is_member_access = (
            prv is not None and prv.kind == "punct"
            and prv.text in (".", "->", "::"))
        this_access = (prev_is_member_access and prv.text == "->"
                       and i >= 2 and tokens[i - 2].kind == "id"
                       and tokens[i - 2].text == "this")
        # Local declarations: `Type name = ...` / `Type &name = ...`.
        if nxt is not None and prv is not None \
                and not prev_is_member_access \
                and (prv.kind == "id"
                     or (prv.kind == "punct"
                         and prv.text in ("&", "*", ">", ">>",
                                          ",", "["))) \
                and nxt.kind == "punct" \
                and nxt.text in ("=", ";", ",", ")", "{", ":", "]"):
            declared.add(t.text)
        if nxt is not None and nxt.kind == "punct" \
                and nxt.text in WRITE_OPS:
            if prev_is_member_access and not this_access:
                i += 1
                continue
            if t.text.endswith("_"):
                add_finding(ctx.findings, ctx.supp, rel, t.line,
                            "thread-escape",
                            f"worker lambda writes shared member "
                            f"'{t.text}' without a subscript{via}")
            elif not chain and (
                    t.text in ref_captures
                    or (ref_default and t.text not in declared)):
                how = ("captured by reference"
                       if t.text in ref_captures
                       else "visible through the [&] default "
                            "capture")
                add_finding(ctx.findings, ctx.supp, rel, t.line,
                            "thread-escape",
                            f"worker lambda writes '{t.text}', a "
                            f"local {how}; workers must write only "
                            f"per-worker/per-tile slots")
        elif nxt is not None and nxt.kind == "punct" \
                and nxt.text == "(":
            if prev_is_member_access and not this_access:
                base = tokens[i - 2] if i >= 2 else None
                if base is not None and base.kind == "id" \
                        and base.text.endswith("_"):
                    verdict = _member_call_verdict(
                        ctx, class_name, base.text, t.text)
                    if verdict:
                        add_finding(
                            ctx.findings, ctx.supp, rel, t.line,
                            "thread-escape",
                            f"{verdict} on shared member "
                            f"'{base.text}' in a worker lambda"
                            f"{via}")
            elif not prev_is_member_access or this_access:
                _maybe_recurse(ctx, rel, t, class_name, chain,
                               visited, depth)
        i += 1


def _member_call_verdict(ctx, class_name, member, method):
    """Non-empty description when calling member.method() mutates."""
    type_id = ctx.classes.get(class_name, {}).get(
        "fields", {}).get(member)
    info = ctx.classes.get(type_id, {}).get(
        "methods", {}).get(method) if type_id else None
    if info is not None:
        if info["const"]:
            return ""
        return f"non-const call .{method}()"
    if method in MUTATING_METHODS:
        return f"mutating container call .{method}()"
    return ""


def _maybe_recurse(ctx, rel, tok, class_name, chain, visited, depth):
    if depth >= 6 or class_name is None:
        return
    info = ctx.classes.get(class_name, {}).get(
        "methods", {}).get(tok.text)
    if info is None or info["body"] is None:
        return
    key = (class_name, tok.text)
    if key in visited:
        return
    # A suppression on the call line prunes this reachability edge.
    if ctx.supp.check(rel, tok.line, "thread-escape"):
        return
    visited.add(key)
    body_rel, body_start, body_end = info["body"]
    _analyze_span(ctx, body_rel, body_start + 1, body_end - 1,
                  class_name, chain + [tok.text], False, set(),
                  visited, depth + 1)


def audit_thread_escape(root, supp, cache=None):
    root = Path(root)
    cache = cache or TokenCache(root)
    findings = []
    files = src_files(root)

    classes = {}
    for rel in files:
        parse_class_defs(cache.tokens(rel), rel, classes)
    def_spans = {}
    for rel in files:
        if rel.endswith(".cpp"):
            def_spans[rel] = method_definitions(cache.tokens(rel),
                                                rel, classes)

    ctx = EscapeContext(cache, classes, supp, findings)
    for rel in files:
        tokens = cache.tokens(rel)
        spans = def_spans.get(rel, [])
        for i in range(len(tokens) - 3):
            if not (tokens[i].kind == "id"
                    and POOL_ID_RE.fullmatch(tokens[i].text)
                    and tokens[i + 1].kind == "punct"
                    and tokens[i + 1].text in ("->", ".")
                    and tokens[i + 2].kind == "id"
                    and tokens[i + 2].text == "run"
                    and tokens[i + 3].kind == "punct"
                    and tokens[i + 3].text == "("):
                continue
            call_end = cpplex.match_forward(tokens, i + 3, "(", ")")
            enclosing = None
            for s, e, cls_name in spans:
                if s <= i <= e:
                    enclosing = cls_name
                    break
            # The lambda: first '[' inside the call's argument list.
            lam = None
            for j in range(i + 4, call_end):
                if tokens[j].kind == "punct" and tokens[j].text == "[":
                    lam = j
                    break
            if lam is None:
                continue
            cap_end = cpplex.match_forward(tokens, lam, "[", "]")
            body_start = None
            for j in range(cap_end + 1, call_end):
                if tokens[j].kind == "punct" and tokens[j].text == "{":
                    body_start = j
                    break
            if body_start is None:
                continue
            body_end = cpplex.match_forward(tokens, body_start,
                                            "{", "}")
            ref_default, ref_captures = _capture_info(tokens, lam,
                                                      cap_end)
            lambda_params = {tokens[j].text
                             for j in range(cap_end + 1, body_start)
                             if tokens[j].kind == "id"}
            _analyze_span(ctx, rel, body_start + 1, body_end - 1,
                          enclosing, [], ref_default, ref_captures,
                          set(), 0, params=lambda_params)
    return findings


# ---------------------------------------------------------------------
# stale-suppression
# ---------------------------------------------------------------------

def audit_stale_suppressions(root, supp, lint_used):
    """Allow-comments (both tools) that absorbed no live finding."""
    root = Path(root)
    findings = []
    findings += supp.malformed
    for rel, line, cls in sorted(supp.comments):
        if (rel, line, cls) not in supp.used:
            findings.append(Finding(
                rel, line, "stale-suppression",
                f"capstan-audit allow({cls}) no longer suppresses "
                f"any live finding; delete it (its justification "
                f"now documents a hazard that does not exist)"))
    for rel in corpus_files(root):
        text = (root / rel).read_text(encoding="utf-8")
        for idx, line in enumerate(text.splitlines(), start=1):
            m = capstan_lint.ALLOW_RE.search(line)
            if not m:
                continue
            cls, why = m.group(1), (m.group(2) or "").strip()
            if cls not in capstan_lint.LINT_CLASSES or not why:
                continue  # capstan-lint flags these as bad-suppression
            if (rel, idx, cls) not in lint_used:
                findings.append(Finding(
                    rel, idx, "stale-suppression",
                    f"capstan-lint allow({cls}) no longer "
                    f"suppresses any live finding; delete it"))
    return findings


def collect_lint_usage(root):
    """Run capstan-lint's analyses purely to learn which of its
    suppressions are still absorbing findings."""
    used = set()
    capstan_lint.lint_tree(Path(root), used_suppressions=used)
    return used


# ---------------------------------------------------------------------
# Driver, self-test
# ---------------------------------------------------------------------

def load_suppressions(root):
    supp = Suppressions()
    for rel in corpus_files(root):
        supp.load(rel, (Path(root) / rel).read_text(encoding="utf-8"))
    return supp


def run_audit(root, build_dir=None, dot_path=None,
              write_diagram=False):
    root = Path(root)
    cache = TokenCache(root)
    supp = load_suppressions(root)
    findings = []
    dag_findings, _ = audit_layer_dag(
        root, supp, cache, build_dir=build_dir, dot_path=dot_path,
        write_diagram=write_diagram)
    findings += dag_findings
    findings += audit_flag_plumbing(root, supp, cache)
    findings += audit_env_registry(root, supp, cache)
    findings += audit_thread_escape(root, supp, cache)
    lint_used = collect_lint_usage(root)
    findings += audit_stale_suppressions(root, supp, lint_used)
    return findings


# Each fixture pair is a miniature repo root; `bad` must produce at
# least one finding of the class, `clean` none.
def self_test():
    base = _HERE / "fixtures"
    failures = []

    def run_class(cls, fixture_root):
        cache = TokenCache(fixture_root)
        supp = load_suppressions(fixture_root)
        if cls == "layer-dag":
            return audit_layer_dag(fixture_root, supp, cache)[0]
        if cls == "flag-plumbing":
            return audit_flag_plumbing(fixture_root, supp, cache)
        if cls == "env-registry":
            return audit_env_registry(fixture_root, supp, cache)
        if cls == "thread-escape":
            return audit_thread_escape(fixture_root, supp, cache)
        if cls == "stale-suppression":
            audit_thread_escape(fixture_root, supp, cache)
            lint_used = collect_lint_usage(fixture_root)
            return audit_stale_suppressions(fixture_root, supp,
                                            lint_used)
        raise AssertionError(cls)

    checked = 0
    for cls in AUDIT_CLASSES:
        fixture = base / cls.replace("-", "_")
        for kind, want in (("bad", True), ("clean", False)):
            troot = fixture / kind
            if not troot.is_dir():
                failures.append(f"{cls}/{kind}: fixture missing")
                continue
            found = [f for f in run_class(cls, troot)
                     if f.cls == cls]
            checked += 1
            if want and not found:
                failures.append(
                    f"{cls}/bad: seeded violation not caught")
            if not want and found:
                failures.append(
                    f"{cls}/clean: unexpected findings: "
                    + "; ".join(str(f) for f in found))

    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL: {f}")
        return 1
    print(f"capstan-audit self-test: {checked} fixture trees OK")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(
        prog="capstan-audit",
        description="Cross-TU architectural checks (see module "
                    "docstring and docs/STATIC_ANALYSIS.md).")
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--build-dir", default=None,
                    help="build tree with compile_commands.json "
                         "(optional; falls back to --root/src as the "
                         "only include dir)")
    ap.add_argument("--dot", default=None, metavar="FILE",
                    help="write the file-level include graph as "
                         "Graphviz DOT")
    ap.add_argument("--write-diagram", action="store_true",
                    help="rewrite the generated layer diagram in "
                         "docs/ARCHITECTURE.md from layers.json")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture self-test and exit")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()

    root = Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"capstan-audit: no src/ under {root}", file=sys.stderr)
        return 2

    findings = run_audit(root, build_dir=args.build_dir,
                         dot_path=args.dot,
                         write_diagram=args.write_diagram)
    for f in findings:
        print(f)
    if findings:
        counts = {}
        for f in findings:
            counts[f.cls] = counts.get(f.cls, 0) + 1
        summary = ", ".join(f"{c} {k}"
                            for k, c in sorted(counts.items()))
        print(f"capstan-audit: {len(findings)} finding(s): "
              f"{summary}")
        return 1
    print("capstan-audit: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
